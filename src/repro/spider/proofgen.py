"""The SPIDeR proof generator (Section 6.1 / 6.5).

When verification is triggered for a commitment at time t, the proof
generator (a) replays the log from the last checkpoint to reconstruct the
routing state at t, (b) rebuilds the MTT with the blinding bitstrings
regenerated from the logged CSPRNG seed, and (c) produces, per neighbor,
the bit proofs that neighbor is due:

* as a *producer* — a 1-proof for the class of each route it was
  advertising to us at t;
* as a *consumer* — 0-proofs for every class its promise ranks above the
  class of the route we were exporting to it at t (⊥ where we exported
  nothing it asks about).

Proofs are only ever volunteered for exported prefixes; for non-exported
prefixes the consumer must name the prefix (``watch`` set), because
volunteering a ⊥-proof for an unasked prefix would reveal that the
prefix exists in our table.

Reconstruction (replay + relabel) is by far the dominant cost of a
verification round, and every neighbor verifying the same commitment
needs the *same* reconstruction, so the generator keeps a small LRU
cache keyed by commit time (``SpiderConfig.reconstruction_cache_size``
entries): N neighbors trigger one rebuild, not N.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..bgp.prefix import Prefix
from ..crypto.hashing import constant_time_eq
from ..bgp.route import NULL_ROUTE
from ..crypto.rc4 import Rc4Csprng
from ..mtt.labeling import label_tree_with_workers
from ..mtt.proofs import generate_proof
from ..mtt.tree import Mtt
from .checkpoint import RoutingState, elector_view, replay
from .recorder import Recorder
from .wire import SpiderBitProof


@dataclass
class Reconstruction:
    """A rebuilt MTT for one past commitment, with timing breakdown."""

    commit_time: float
    tree: Mtt
    root: bytes
    state: RoutingState
    replay_seconds: float
    label_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.replay_seconds + self.label_seconds


@dataclass
class ProofSet:
    """Everything one neighbor receives for one verification."""

    elector: int
    recipient: int
    commit_time: float
    #: prefix → the 1-proof for the class of the neighbor's own input.
    producer_proofs: Dict[Prefix, SpiderBitProof] = field(
        default_factory=dict)
    #: prefix → the 0-proofs for classes above the offered route's class.
    consumer_proofs: Dict[Prefix, List[SpiderBitProof]] = field(
        default_factory=dict)
    generation_seconds: float = 0.0

    def all_proofs(self) -> List[SpiderBitProof]:
        out = list(self.producer_proofs.values())
        for proofs in self.consumer_proofs.values():
            out.extend(proofs)
        return out

    def wire_size(self) -> int:
        return sum(p.wire_size() for p in self.all_proofs())

    def proof_count(self) -> int:
        return len(self.producer_proofs) + \
            sum(len(v) for v in self.consumer_proofs.values())


class ProofGenerator:
    """Builds proof sets from a recorder's log.

    Reconstructions are cached (LRU by commit time, capacity
    ``SpiderConfig.reconstruction_cache_size``): a reconstruction is a
    pure function of the log contents up to that commitment, so as long
    as the commitment exists it can be reused for every neighbor
    verifying that interval.
    """

    def __init__(self, recorder: Recorder):
        self.recorder = recorder
        self._cache: "OrderedDict[float, Reconstruction]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def asn(self) -> int:
        return self.recorder.asn

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def reconstruct(self, commit_time: float,
                    use_cache: bool = True) -> Reconstruction:
        """Replay the log and rebuild the MTT for a past commitment."""
        if use_cache and commit_time in self._cache:
            self.cache_hits += 1
            self._cache.move_to_end(commit_time)
            return self._cache[commit_time]
        self.cache_misses += 1
        reconstruction = self._reconstruct(commit_time)
        capacity = getattr(self.recorder.config,
                           "reconstruction_cache_size", 8)
        if use_cache and capacity > 0:
            self._cache[commit_time] = reconstruction
            while len(self._cache) > capacity:
                self._cache.popitem(last=False)
        return reconstruction

    def _reconstruct(self, commit_time: float) -> Reconstruction:
        recorder = self.recorder
        entry = recorder.log.commitment_at(commit_time)
        if entry is None:
            raise ValueError(f"no commitment logged at t={commit_time}")
        seed = entry.payload["seed"]

        start = time.perf_counter()
        state = replay(recorder.log, recorder.asn, commit_time)
        entries = recorder.mtt_entries(state)
        tree = Mtt.build(entries)
        replay_seconds = time.perf_counter() - start

        # Reuses the recorder's warm labeling pool: reconstructions are
        # the same workload as live commitments (§6.5 replay), so they
        # share the same workers and shared-memory program.
        report = label_tree_with_workers(
            tree, Rc4Csprng(seed),
            workers=recorder.config.commit_workers,
            cut_depth=recorder.config.label_cut_depth,
            pool=recorder.labeling_pool())
        if not constant_time_eq(report.root_label,
                                entry.payload["root"]):
            raise RuntimeError(
                "reconstructed MTT root differs from the committed root — "
                "log replay is broken"
            )
        return Reconstruction(commit_time=commit_time, tree=tree,
                              root=report.root_label, state=state,
                              replay_seconds=replay_seconds,
                              label_seconds=report.seconds)

    # ------------------------------------------------------------------
    # Proof sets

    def proofs_for(self, reconstruction: Reconstruction, neighbor: int,
                   watch: Iterable[Prefix] = ()) -> ProofSet:
        """All proofs ``neighbor`` is due for one commitment."""
        recorder = self.recorder
        state = reconstruction.state
        tree = reconstruction.tree
        scheme = recorder.scheme
        start = time.perf_counter()
        result = ProofSet(elector=self.asn, recipient=neighbor,
                          commit_time=reconstruction.commit_time)

        # Producer side: one 1-proof per prefix the neighbor advertised.
        for prefix, route in state.imports.get(neighbor, {}).items():
            class_index = scheme.classify(route)
            result.producer_proofs[prefix] = self._signed_proof(
                tree, neighbor, reconstruction.commit_time, prefix,
                class_index)

        # Consumer side: 0-proofs for classes above each offer.
        promise = recorder.promises.get(neighbor)
        if promise is not None:
            exports = state.exports.get(neighbor, {})
            prefixes = set(exports) | set(watch)
            for prefix in prefixes:
                if tree.prefix_node(prefix) is None:
                    continue  # nothing committed for this prefix
                offer = exports.get(prefix, NULL_ROUTE)
                if offer is not NULL_ROUTE:
                    offer = elector_view(offer, self.asn)
                offer_class = scheme.classify(offer)
                proofs = [
                    self._signed_proof(tree, neighbor,
                                       reconstruction.commit_time,
                                       prefix, class_index)
                    for class_index in promise.classes_above(offer_class)
                ]
                if proofs:
                    result.consumer_proofs[prefix] = proofs
        result.generation_seconds = time.perf_counter() - start
        return result

    def proofs_for_prefix(self, reconstruction: Reconstruction,
                          neighbor: int, prefix: Prefix) -> ProofSet:
        """Single-prefix verification (the §7.3 'route to Google' case)."""
        recorder = self.recorder
        state = reconstruction.state
        tree = reconstruction.tree
        start = time.perf_counter()
        result = ProofSet(elector=self.asn, recipient=neighbor,
                          commit_time=reconstruction.commit_time)
        advertised = state.imports.get(neighbor, {}).get(prefix)
        if advertised is not None:
            result.producer_proofs[prefix] = self._signed_proof(
                tree, neighbor, reconstruction.commit_time, prefix,
                recorder.scheme.classify(advertised))
        promise = recorder.promises.get(neighbor)
        if promise is not None and tree.prefix_node(prefix) is not None:
            offer = state.exports.get(neighbor, {}).get(prefix,
                                                        NULL_ROUTE)
            if offer is not NULL_ROUTE:
                offer = elector_view(offer, self.asn)
            offer_class = recorder.scheme.classify(offer)
            proofs = [
                self._signed_proof(tree, neighbor,
                                   reconstruction.commit_time, prefix,
                                   class_index)
                for class_index in promise.classes_above(offer_class)
            ]
            if proofs:
                result.consumer_proofs[prefix] = proofs
        result.generation_seconds = time.perf_counter() - start
        return result

    def _signed_proof(self, tree: Mtt, recipient: int, commit_time: float,
                      prefix: Prefix, class_index: int) -> SpiderBitProof:
        proof = generate_proof(tree, prefix, class_index)
        return SpiderBitProof.make(self.recorder.signer, recipient,
                                   commit_time, proof)
