"""Gao-Rexford-consistent promise construction.

The paper's evaluation pairs a Gao-Rexford policy with a "shortest
route" promise to every neighbor; that combination is only honest when
preference tiers never conflict with path length (true for the paper's
workload, where every route enters through a provider).  Section 3.2
spells out the general hazard: "a longer route through that customer
will be preferred over a shorter route through a different customer; if
the AS has previously promised to deliver the shortest customer route
regardless of that customer's identity, then this is a violation."

This module builds the promises an AS running the standard Gao-Rexford
policy (:data:`~repro.bgp.policy.RELATION_LOCAL_PREF` tiers, then path
length) can actually keep:

* the class scheme is per-elector and splits classes by **first-hop
  neighbor and path length** — the §3.1 obfuscation device of "splitting
  classes into mutually indifferent subclasses", used here so each
  consumer's promise can leave routes *through that consumer* unordered
  (BGP never re-exports a route to an AS already on its path);
* the promised order between two classes is exactly the elector's true
  (local-pref tier, path length) lexicographic preference, which every
  neighbor can derive because AS-level topology and relations are public
  (Assumption 5);
* peers and providers — who only ever receive customer routes under
  valley-free export — are promised only the order among customer-tier
  classes, so legitimate export filtering never reads as a broken
  promise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..bgp.policy import Relation
from ..netsim.topology import Topology
from ..bgp.route import NULL_ROUTE
from ..core.classes import ClassScheme, RouteOrNull
from ..core.promise import Promise

#: Tier ranks mirroring the RELATION_LOCAL_PREF ladder (higher wins).
_TIER_RANK = {
    Relation.PROVIDER: 0,
    Relation.PEER: 1,
    Relation.SIBLING: 2,
    Relation.CUSTOMER: 3,
}

#: Tier rank of a locally originated route (default local-pref ≙ peer).
_ORIGIN_RANK = _TIER_RANK[Relation.PEER]


class GaoRexfordScheme:
    """The (first-hop × length) class scheme of one elector.

    Groups: one per neighbor, plus an 'origin' group for the elector's
    own prefixes.  Class 0 is ⊥/overlong; class indices within a group
    increase as paths get shorter.
    """

    def __init__(self, elector: int, relations: Dict[int, Relation],
                 max_length: int = 8):
        if max_length < 1:
            raise ValueError("max_length must be at least 1")
        self.elector = elector
        self.relations = dict(relations)
        self.max_length = max_length
        #: group id → (name, first_hop or None for origin, tier rank)
        self.groups: List[Tuple[str, Optional[int], int]] = [
            (f"via{n}", n, _TIER_RANK[relations[n]])
            for n in sorted(relations)
        ]
        self.groups.append(("origin", None, _ORIGIN_RANK))
        labels = ["no-route"]
        for name, _hop, _rank in self.groups:
            for length in range(max_length, 0, -1):
                labels.append(f"{name}-length-{length}")
        self.scheme = ClassScheme(labels=tuple(labels),
                                  classify_fn=self._classify)

    def _group_of(self, first_hop: int) -> Optional[int]:
        for index, (_name, hop, _rank) in enumerate(self.groups):
            if hop == first_hop:
                return index
        if first_hop == self.elector:
            return len(self.groups) - 1  # origin group
        return None

    def _classify(self, route: RouteOrNull) -> Optional[int]:
        if route is NULL_ROUTE:
            return 0
        length = route.path_length
        if length == 0 or length > self.max_length:
            return 0
        group = self._group_of(route.as_path[0])
        if group is None:
            return 0  # a first hop that is not a neighbor: unusable
        return 1 + group * self.max_length + (self.max_length - length)

    # ------------------------------------------------------------------

    def class_info(self, index: int) -> Optional[Tuple[int, int, int]]:
        """(first_hop group, tier rank, length) of a class; None for ⊥."""
        if index == 0:
            return None
        group, offset = divmod(index - 1, self.max_length)
        length = self.max_length - offset
        return (group, self.groups[group][2], length)

    def promise_for(self, consumer: int) -> Promise:
        """The honest promise to one consumer.

        Orders class A below class B iff the elector's true preference
        (tier rank, then shorter length) strictly prefers B — except
        that classes whose routes pass through the consumer itself are
        left unordered (they can never be exported to it), and
        non-customer consumers are only promised the customer-tier
        order.
        """
        relation = self.relations[consumer]
        customers_only = relation not in (Relation.CUSTOMER,
                                          Relation.SIBLING)
        k = self.scheme.k
        pairs: Set[Tuple[int, int]] = set()
        infos = [self.class_info(i) for i in range(k)]
        for a in range(1, k):
            group_a, rank_a, len_a = infos[a]
            if self.groups[group_a][1] == consumer:
                continue
            if customers_only and rank_a != _TIER_RANK[Relation.CUSTOMER]:
                continue
            for b in range(1, k):
                if a == b:
                    continue
                group_b, rank_b, len_b = infos[b]
                if self.groups[group_b][1] == consumer:
                    continue
                if customers_only and \
                        rank_b != _TIER_RANK[Relation.CUSTOMER]:
                    continue
                if (rank_b, -len_b) > (rank_a, -len_a):
                    pairs.add((a, b))
        return Promise(scheme=self.scheme, order=frozenset(pairs))


class GaoRexfordPromises:
    """Factory bundle: per-elector scheme + per-consumer promises.

    Plugs into a deployment as its ``scheme_factory`` and
    ``promise_factory``::

        grp = GaoRexfordPromises(topology, max_length=8)
        SpiderDeployment(network, scheme_factory=grp.scheme_for,
                         promise_factory=grp.promise_for)
    """

    def __init__(self, topology: Topology, max_length: int = 8):
        self.topology = topology
        self.max_length = max_length
        self._bundles: Dict[int, GaoRexfordScheme] = {}

    def _bundle(self, elector: int) -> GaoRexfordScheme:
        if elector not in self._bundles:
            self._bundles[elector] = GaoRexfordScheme(
                elector, self.topology.relations_of(elector),
                self.max_length)
        return self._bundles[elector]

    def scheme_for(self, elector: int) -> ClassScheme:
        return self._bundle(elector).scheme

    def promise_for(self, elector: int, consumer: int) -> Promise:
        return self._bundle(elector).promise_for(consumer)
