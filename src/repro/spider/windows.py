"""Loose-synchronization input windows (Section 6.4).

For a commitment at time T, the elector may choose each input from the
window [T − δ, T]: if a neighbor's route flapped inside the window, any
of its values during the window (including ⊥ between a withdrawal and the
next announcement) is an admissible input.  During verification the proof
generator picks, for each producer, the first admissible input that would
not have been preferred over the actual output — such an input must exist
for a correct elector, because otherwise that producer offered a strictly
better route for the *entire* window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..bgp.route import NULL_ROUTE
from ..core.classes import RouteOrNull
from ..core.promise import Promise


@dataclass(frozen=True)
class RouteChange:
    """One point in a neighbor's advertisement history for a prefix:
    at ``time`` the advertised route became ``route`` (⊥ = withdrawn)."""

    time: float
    route: RouteOrNull


def value_at(history: Sequence[RouteChange], t: float) -> RouteOrNull:
    """The advertised route at time ``t`` (⊥ before the first change)."""
    current: RouteOrNull = NULL_ROUTE
    for change in history:
        if change.time > t:
            break
        current = change.route
    return current


def admissible_inputs(history: Sequence[RouteChange], commit_time: float,
                      delta: float) -> List[RouteOrNull]:
    """Every value the advertisement took during [T − δ, T], in order.

    The value holding at the start of the window comes first; duplicates
    from re-announcements of the same route are collapsed.
    """
    if delta < 0:
        raise ValueError("delta must be non-negative")
    start = commit_time - delta
    values: List[RouteOrNull] = [value_at(history, start)]
    for change in history:
        if start < change.time <= commit_time:
            if change.route != values[-1]:
                values.append(change.route)
    return values


def choose_input(history: Sequence[RouteChange], commit_time: float,
                 delta: float, output: RouteOrNull,
                 promises: Sequence[Promise]) -> Optional[RouteOrNull]:
    """The §6.4 selection rule: the first admissible input that would not
    have been preferred over the actual output under any promise.

    Returns None when every admissible value beats the output throughout
    the window — the situation in which the elector's output cannot be
    explained and verification must fail.
    """
    candidates = admissible_inputs(history, commit_time, delta)
    for candidate in candidates:
        preferred = any(
            promise.is_violation(available=candidate, exported=output)
            for promise in promises
        )
        if not preferred:
            return candidate
    return None


def stable_in_window(history: Sequence[RouteChange], commit_time: float,
                     delta: float) -> bool:
    """True when the advertisement did not change inside [T − δ, T].

    "When the routes for a given prefix are stable, the elector has no
    freedom at all" — this is the predicate making that precise.
    """
    return len(admissible_inputs(history, commit_time, delta)) == 1
