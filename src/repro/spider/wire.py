"""SPIDeR wire messages (Section 6.2).

Every BGP UPDATE is re-announced through SPIDeR with signatures and
acknowledgments:

* announcement — ``σ_E(ANNOUNCE, t, C, p, σ_P(r'), σ_E(r))`` where ``t``
  is a timestamp (doubling as a nonce), ``C`` the recipient AS, ``p`` the
  prefix, ``σ_P(r')`` the underlying signed route the elector imported
  (absent for locally originated routes), and ``σ_E(r)`` the elector's
  inner signature over the route, which the consumer reuses when it
  propagates the route to its own consumers;
* withdrawal — ``σ_E(WITHDRAW, t, C, p)``;
* acknowledgment — ``σ_r(ACK, t, C, H(m))``;
* commitment — the signed MTT root, broadcast periodically;
* RE-ANNOUNCE — the extended-verification variant (Section 6.6) with a
  distinct type tag so it can never stand in for an original.

All payloads are canonical byte encodings, so the signatures bind every
field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..bgp.prefix import Prefix
from ..bgp.route import Route
from ..crypto.hashing import constant_time_eq, digest, digest_fields
from ..crypto.keys import KeyRegistry
from ..crypto.signatures import Signed, Signer, Verifier


def _time_bytes(t: float) -> bytes:
    """Canonical 8-byte timestamp used inside every signature payload.

    Millisecond resolution keeps the encoding stable across replay, and
    it is also the nonce resolution: the paper's timestamps "double as
    nonces" (Section 6.2), so two *logically distinct* messages to the
    same peer within the same millisecond would encode identical nonce
    bytes and be indistinguishable as replays.  The recorder respects
    this by stamping a whole outbox flush with one timestamp — the batch
    is one logical burst — and deployments must not emit more than one
    independent message per (peer, millisecond).

    Timestamps are seconds since an epoch and can never be negative; a
    negative value would wrap the unsigned encoding into a huge bogus
    nonce, so it is rejected outright.
    """
    if t < 0:
        raise ValueError(f"negative timestamp {t!r}")
    return int(round(t * 1000)).to_bytes(8, "big")


def route_signature_payload(route: Route) -> bytes:
    """Payload of the inner ``σ_E(r)`` route signature."""
    return digest_fields(b"SPIDER-ROUTE", route.to_bytes())


def sign_route(signer: Signer, route: Route) -> Signed:
    return signer.sign(route_signature_payload(route))


def route_signature_valid(registry: KeyRegistry, signer_asn: int,
                          route: Route, envelope: Signed) -> bool:
    return (envelope.signer == signer_asn
            and constant_time_eq(envelope.payload,
                                 route_signature_payload(route))
            and Verifier(registry).verify(envelope))


def announce_payload(sender: int, receiver: int, timestamp: float,
                     route: Route, underlying: Optional[Signed],
                     route_sig: Signed, reannounce: bool = False) -> bytes:
    tag = b"SPIDER-REANNOUNCE" if reannounce else b"SPIDER-ANNOUNCE"
    underlying_part = b"" if underlying is None else (
        underlying.payload + underlying.signature)
    return digest_fields(
        tag, sender.to_bytes(4, "big"), receiver.to_bytes(4, "big"),
        _time_bytes(timestamp), route.prefix.to_bytes(), route.to_bytes(),
        underlying_part, route_sig.signature)


@dataclass(frozen=True, slots=True)
class SpiderAnnounce:
    """A signed, timestamped route announcement."""

    sender: int
    receiver: int
    timestamp: float
    route: Route
    #: ``σ_P(r')``: the signed route the sender itself imported (None for
    #: locally originated prefixes).
    underlying: Optional[Signed]
    #: ``σ_E(r)``: the sender's inner signature over the route.
    route_sig: Signed
    envelope: Signed
    reannounce: bool = False

    @classmethod
    def make(cls, signer: Signer, receiver: int, timestamp: float,
             route: Route, underlying: Optional[Signed],
             reannounce: bool = False) -> "SpiderAnnounce":
        route_sig = sign_route(signer, route)
        payload = announce_payload(signer.asn, receiver, timestamp, route,
                                   underlying, route_sig,
                                   reannounce=reannounce)
        return cls(sender=signer.asn, receiver=receiver,
                   timestamp=timestamp, route=route,
                   underlying=underlying, route_sig=route_sig,
                   envelope=signer.sign(payload), reannounce=reannounce)

    @property
    def prefix(self) -> Prefix:
        return self.route.prefix

    def message_hash(self) -> bytes:
        return digest(self.envelope.payload + self.envelope.signature)

    def valid(self, registry: KeyRegistry) -> bool:
        if self.envelope.signer != self.sender:
            return False
        if not route_signature_valid(registry, self.sender, self.route,
                                     self.route_sig):
            return False
        if self.underlying is not None and \
                not Verifier(registry).verify(self.underlying):
            return False
        expected = announce_payload(self.sender, self.receiver,
                                    self.timestamp, self.route,
                                    self.underlying, self.route_sig,
                                    reannounce=self.reannounce)
        return constant_time_eq(self.envelope.payload, expected) and \
            Verifier(registry).verify(self.envelope)

    def wire_size(self) -> int:
        size = self.envelope.wire_size() + self.route_sig.wire_size()
        if self.underlying is not None:
            size += self.underlying.wire_size()
        return size


def withdraw_payload(sender: int, receiver: int, timestamp: float,
                     prefix: Prefix) -> bytes:
    return digest_fields(b"SPIDER-WITHDRAW", sender.to_bytes(4, "big"),
                         receiver.to_bytes(4, "big"),
                         _time_bytes(timestamp), prefix.to_bytes())


@dataclass(frozen=True, slots=True)
class SpiderWithdraw:
    """``σ_E(WITHDRAW, t, C, p)``."""

    sender: int
    receiver: int
    timestamp: float
    prefix: Prefix
    envelope: Signed

    @classmethod
    def make(cls, signer: Signer, receiver: int, timestamp: float,
             prefix: Prefix) -> "SpiderWithdraw":
        payload = withdraw_payload(signer.asn, receiver, timestamp, prefix)
        return cls(sender=signer.asn, receiver=receiver,
                   timestamp=timestamp, prefix=prefix,
                   envelope=signer.sign(payload))

    def message_hash(self) -> bytes:
        return digest(self.envelope.payload + self.envelope.signature)

    def valid(self, registry: KeyRegistry) -> bool:
        if self.envelope.signer != self.sender:
            return False
        expected = withdraw_payload(self.sender, self.receiver,
                                    self.timestamp, self.prefix)
        return constant_time_eq(self.envelope.payload, expected) and \
            Verifier(registry).verify(self.envelope)

    def wire_size(self) -> int:
        return self.envelope.wire_size()


def ack_payload(acker: int, sender: int, timestamp: float,
                message_hash: bytes) -> bytes:
    return digest_fields(b"SPIDER-ACK", acker.to_bytes(4, "big"),
                         sender.to_bytes(4, "big"),
                         _time_bytes(timestamp), message_hash)


@dataclass(frozen=True, slots=True)
class SpiderAck:
    """``σ_r(ACK, t, C, H(m))``: the receiver's receipt for a message."""

    acker: int
    sender: int
    timestamp: float
    message_hash: bytes
    envelope: Signed

    @classmethod
    def make(cls, signer: Signer, sender: int, timestamp: float,
             message_hash: bytes) -> "SpiderAck":
        payload = ack_payload(signer.asn, sender, timestamp, message_hash)
        return cls(acker=signer.asn, sender=sender, timestamp=timestamp,
                   message_hash=message_hash,
                   envelope=signer.sign(payload))

    def valid(self, registry: KeyRegistry) -> bool:
        if self.envelope.signer != self.acker:
            return False
        expected = ack_payload(self.acker, self.sender, self.timestamp,
                               self.message_hash)
        return constant_time_eq(self.envelope.payload, expected) and \
            Verifier(registry).verify(self.envelope)

    def wire_size(self) -> int:
        return self.envelope.wire_size()


def commitment_payload(elector: int, commit_time: float,
                       root: bytes) -> bytes:
    return digest_fields(b"SPIDER-COMMIT", elector.to_bytes(4, "big"),
                         _time_bytes(commit_time), root)


@dataclass(frozen=True, slots=True)
class SpiderCommitment:
    """The periodic signed MTT-root commitment (Section 5.3 / 6.1)."""

    elector: int
    commit_time: float
    root: bytes
    envelope: Signed

    @classmethod
    def make(cls, signer: Signer, commit_time: float,
             root: bytes) -> "SpiderCommitment":
        payload = commitment_payload(signer.asn, commit_time, root)
        return cls(elector=signer.asn, commit_time=commit_time, root=root,
                   envelope=signer.sign(payload))

    def valid(self, registry: KeyRegistry) -> bool:
        if self.envelope.signer != self.elector:
            return False
        expected = commitment_payload(self.elector, self.commit_time,
                                      self.root)
        return constant_time_eq(self.envelope.payload, expected) and \
            Verifier(registry).verify(self.envelope)

    def wire_size(self) -> int:
        return self.envelope.wire_size()


def bit_proof_payload(elector: int, recipient: int, commit_time: float,
                      proof_bytes: bytes) -> bytes:
    return digest_fields(b"SPIDER-BITPROOF", elector.to_bytes(4, "big"),
                         recipient.to_bytes(4, "big"),
                         _time_bytes(commit_time), proof_bytes)


@dataclass(frozen=True, slots=True)
class SpiderBitProof:
    """A signed MTT bit proof for one (prefix, class) of one commitment."""

    elector: int
    recipient: int
    commit_time: float
    proof: "MttBitProof"
    envelope: Signed

    @classmethod
    def make(cls, signer: Signer, recipient: int, commit_time: float,
             proof: "MttBitProof") -> "SpiderBitProof":
        payload = bit_proof_payload(signer.asn, recipient, commit_time,
                                    proof.encode())
        return cls(elector=signer.asn, recipient=recipient,
                   commit_time=commit_time, proof=proof,
                   envelope=signer.sign(payload))

    def valid(self, registry: KeyRegistry) -> bool:
        if self.envelope.signer != self.elector:
            return False
        expected = bit_proof_payload(self.elector, self.recipient,
                                     self.commit_time,
                                     self.proof.encode())
        return constant_time_eq(self.envelope.payload, expected) and \
            Verifier(registry).verify(self.envelope)

    def wire_size(self) -> int:
        return self.envelope.wire_size() + self.proof.wire_size()


from ..mtt.proofs import MttBitProof  # noqa: E402  (type for SpiderBitProof)
