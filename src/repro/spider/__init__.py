"""SPIDeR — Secure and Private Inter-Domain Routing (Section 6).

The companion protocol to BGP: recorders mirror the BGP message flow with
signatures and acknowledgments, commit periodically to the full routing
state via one MTT root, and reconstruct past state from a tamper-evident
log to answer verification requests.
"""

from .checker import Checker, CheckReport
from .checkpoint import RoutingState, apply_entry, replay, take_checkpoint
from .config import SpiderConfig
from .evidence import CommitmentEquivocationPoM, ExportEvidence, \
    ImportEvidence, MissingAckEvidence, \
    commitment_equivocation_valid, export_evidence_valid, \
    import_evidence_valid, missing_ack_evidence_valid, refute_export, \
    refute_import
from .extended import ExtendedVerificationResult, producer_reannounces, \
    run_extended_verification
from .promises import GaoRexfordPromises, GaoRexfordScheme
from .log import EntryKind, LogEntry, SpiderLog, TamperError
from .node import EVALUATION_CLASSES, PROOF_TRAFFIC, SPIDER_TRAFFIC, \
    SpiderDeployment, SpiderNode, VerificationOutcome, evaluation_scheme
from .proofgen import ProofGenerator, ProofSet, Reconstruction
from .recorder import CommitmentRecord, Recorder
from .windows import RouteChange, admissible_inputs, choose_input, \
    stable_in_window, value_at
from .wire import SpiderAck, SpiderAnnounce, SpiderBitProof, \
    SpiderCommitment, SpiderWithdraw, sign_route

__all__ = [
    "Checker", "CheckReport",
    "RoutingState", "apply_entry", "replay", "take_checkpoint",
    "SpiderConfig",
    "CommitmentEquivocationPoM", "ExportEvidence", "ImportEvidence",
    "MissingAckEvidence",
    "commitment_equivocation_valid", "export_evidence_valid",
    "import_evidence_valid", "missing_ack_evidence_valid",
    "refute_export", "refute_import",
    "ExtendedVerificationResult", "producer_reannounces",
    "run_extended_verification",
    "GaoRexfordPromises", "GaoRexfordScheme",
    "EntryKind", "LogEntry", "SpiderLog", "TamperError",
    "EVALUATION_CLASSES", "PROOF_TRAFFIC", "SPIDER_TRAFFIC",
    "SpiderDeployment", "SpiderNode", "VerificationOutcome",
    "evaluation_scheme",
    "ProofGenerator", "ProofSet", "Reconstruction",
    "CommitmentRecord", "Recorder",
    "RouteChange", "admissible_inputs", "choose_input",
    "stable_in_window", "value_at",
    "SpiderAck", "SpiderAnnounce", "SpiderBitProof", "SpiderCommitment",
    "SpiderWithdraw", "sign_route",
]
