"""From-scratch RSA signatures (the paper uses RSA-1024, Section 7.1).

This module implements everything needed for SPIDeR's signing layer without
any external crypto library: Miller–Rabin primality testing, key generation,
and deterministic PKCS#1-v1.5-style signing over the truncated SHA-512
digest from :mod:`repro.crypto.hashing`.

Key generation accepts an optional seed so that simulations are fully
deterministic; production users should omit the seed, in which case the
operating system's entropy source is used.

Security note: this is a faithful, readable implementation for a research
artifact.  It performs no blinding and is not constant-time; do not use it
to protect real traffic.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .hashing import digest

#: Default modulus size, matching the paper's RSA-1024.
DEFAULT_KEY_BITS = 1024

#: Fixed public exponent (F4), the universal modern choice.
PUBLIC_EXPONENT = 65537

# Small primes used to cheaply reject most composite candidates before
# running Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
]

# ASN.1-ish prefix tag marking "truncated SHA-512" inside the padded block.
# (Real PKCS#1 v1.5 embeds a DigestInfo DER structure; we embed a fixed tag
# with the same disambiguation role.)
_DIGEST_TAG = b"repro:sha512/160:"


def _miller_rabin(n: int, rounds: int, rng: random.Random) -> bool:
    """Probabilistic primality test; False means definitely composite."""
    if n < 2:
        return False
    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def is_probable_prime(n: int, rng: Optional[random.Random] = None,
                      rounds: int = 40) -> bool:
    """Return True if ``n`` is prime with overwhelming probability."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    return _miller_rabin(n, rounds, rng or random.Random(secrets.randbits(64)))


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # force top bit and oddness
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class PublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int = PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def size_bytes(self) -> int:
        """Modulus size in bytes; equals the signature length."""
        return (self.bits + 7) // 8

    def fingerprint(self) -> bytes:
        """Stable identifier for this key (hash of its encoding)."""
        return digest(self.n.to_bytes(self.size_bytes, "big")
                      + self.e.to_bytes(4, "big"))


@dataclass(frozen=True)
class PrivateKey:
    """RSA private key with CRT components for fast signing."""

    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def public_key(self) -> PublicKey:
        return PublicKey(n=self.n, e=self.e)

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def _rsa_sign_int(self, m: int) -> int:
        """Private-key operation via the Chinese Remainder Theorem."""
        s_p = pow(m % self.p, self.d_p, self.p)
        s_q = pow(m % self.q, self.d_q, self.q)
        h = (self.q_inv * (s_p - s_q)) % self.p
        return s_q + h * self.q


#: Memoized seeded keypairs.  Seeded generation is a pure function of
#: (bits, seed), and simulations (notably adversarial campaigns, which
#: stand up several deployments per run) request the same identities
#: over and over; PrivateKey is frozen, so sharing instances is safe.
_seeded_cache: Dict[Tuple[int, int], PrivateKey] = {}


def generate_keypair(bits: int = DEFAULT_KEY_BITS,
                     seed: Optional[int] = None) -> PrivateKey:
    """Generate an RSA keypair.

    :spiderlint-contract: source(rsa-private)

    ``seed`` makes generation deterministic (for reproducible simulations);
    omit it for real randomness.  The returned key is private material
    (§7.1): only ``sign`` output and the ``public_key`` half may reach
    a public surface.
    """
    if bits < 256:
        raise ValueError(
            "modulus must be at least 256 bits to hold a padded digest"
        )
    if seed is not None:
        cached = _seeded_cache.get((bits, seed))
        if cached is not None:
            return cached
    rng = random.Random(seed) if seed is not None else \
        random.Random(secrets.randbits(128))
    e = PUBLIC_EXPONENT
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits - bits // 2, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = pow(e, -1, phi)
        key = PrivateKey(
            n=n, e=e, d=d, p=p, q=q,
            d_p=d % (p - 1), d_q=d % (q - 1),
            q_inv=pow(q, -1, p),
        )
        if seed is not None:
            _seeded_cache[(bits, seed)] = key
        return key


def _pad_digest(h: bytes, size: int) -> int:
    """EMSA-PKCS1-v1_5-style encoding of a digest into a ``size``-byte int.

    Layout: ``0x00 0x01 FF..FF 0x00 TAG DIGEST``.
    """
    payload = _DIGEST_TAG + h
    pad_len = size - 3 - len(payload)
    if pad_len < 8:
        raise ValueError("key too small for padded digest")
    block = b"\x00\x01" + b"\xff" * pad_len + b"\x00" + payload
    return int.from_bytes(block, "big")


def sign(key: PrivateKey, message: bytes) -> bytes:
    """Sign ``message`` (hashed internally) and return the raw signature."""
    m = _pad_digest(digest(message), key.size_bytes)
    s = key._rsa_sign_int(m)
    return s.to_bytes(key.size_bytes, "big")


def verify(key: PublicKey, message: bytes, signature: bytes) -> bool:
    """Return True iff ``signature`` is a valid signature on ``message``."""
    if len(signature) != key.size_bytes:
        return False
    s = int.from_bytes(signature, "big")
    if s >= key.n:
        return False
    m = pow(s, key.e, key.n)
    try:
        expected = _pad_digest(digest(message), key.size_bytes)
    except ValueError:
        return False
    return m == expected
