"""Key distribution for SPIDeR participants.

Assumption 5 of the paper (Section 4.2) states that the public keys of all
ASes are known to everyone, and notes that deploying the RPKI would satisfy
this.  This module is the in-simulation stand-in for the RPKI: a registry
mapping AS numbers to RSA public keys, plus per-AS identity objects that
bundle an AS number with its private key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from . import rsa


class UnknownKeyError(KeyError):
    """Raised when a public key is requested for an unregistered AS."""


@dataclass(frozen=True)
class Identity:
    """An AS's cryptographic identity: its number and private key."""

    asn: int
    private_key: rsa.PrivateKey

    @property
    def public_key(self) -> rsa.PublicKey:
        return self.private_key.public_key


@dataclass
class KeyRegistry:
    """Shared directory of AS public keys (the RPKI stand-in).

    The registry is append-only in normal operation: re-registering an AS
    with a different key raises, mirroring the fact that RPKI certificates
    pin an AS to its key.
    """

    _keys: Dict[int, rsa.PublicKey] = field(default_factory=dict)

    def register(self, asn: int, public_key: rsa.PublicKey) -> None:
        existing = self._keys.get(asn)
        if existing is not None and existing != public_key:
            raise ValueError(f"AS {asn} is already registered with a "
                             "different public key")
        self._keys[asn] = public_key

    def public_key(self, asn: int) -> rsa.PublicKey:
        try:
            return self._keys[asn]
        except KeyError:
            raise UnknownKeyError(f"no public key registered for AS {asn}")

    def knows(self, asn: int) -> bool:
        return asn in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def __iter__(self) -> Iterator[int]:
        return iter(self._keys)


def make_identity(asn: int, registry: Optional[KeyRegistry] = None,
                  bits: int = rsa.DEFAULT_KEY_BITS,
                  seed: Optional[int] = None) -> Identity:
    """Generate a keypair for ``asn`` and register it.

    When ``seed`` is omitted, a deterministic seed derived from the AS
    number is *not* used — real entropy is.  Simulations pass an explicit
    seed for reproducibility.
    """
    key = rsa.generate_keypair(bits=bits, seed=seed)
    identity = Identity(asn=asn, private_key=key)
    if registry is not None:
        registry.register(asn, identity.public_key)
    return identity
