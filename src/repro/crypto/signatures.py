"""Signed message envelopes and batch signing.

Everything SPIDeR puts on the wire is signed (Section 6.2).  This module
provides:

* :class:`Signed` — an envelope binding a payload to its signer's AS number,
  so a signature can always be attributed;
* :class:`Signer` / :class:`Verifier` — per-AS signing and verification
  frontends that also keep operation counters, which the evaluation uses to
  attribute CPU cost to cryptography (Section 7.5);
* :class:`BatchSigner` — Nagle-style batching: "routers can sign messages in
  batches" (Section 6.2), which is why the paper observes only 3,913
  signatures for 38,696 BGP updates.

A batch signature signs the hash-concatenation of all payloads in the batch;
each :class:`Signed` then carries the sibling digests it needs so it remains
independently verifiable, exactly like a tiny Merkle authentication list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from . import rsa
from ..obs.registry import Registry, get_registry
from .hashing import constant_time_eq, digest, digest_fields
from .keys import Identity, KeyRegistry


@dataclass(frozen=True, slots=True)
class Signed:
    """A payload plus an attributable signature.

    ``batch_digests``/``batch_index`` are populated for batch-signed
    messages: the signature then covers ``digest_fields(*batch_digests)``
    where ``batch_digests[batch_index] == digest(payload)``.  For singleton
    signatures both fields are empty/zero and the signature covers the
    payload digest directly.
    """

    signer: int
    payload: bytes
    signature: bytes
    batch_digests: Tuple[bytes, ...] = ()
    batch_index: int = 0

    def signed_bytes(self) -> bytes:
        """The exact byte string the RSA signature covers."""
        if self.batch_digests:
            return _batch_root(self.signer, self.batch_digests)
        return _single_root(self.signer, self.payload)

    def wire_size(self) -> int:
        """Serialized size in bytes, used by the bandwidth meter.

        A batch is transmitted as a unit to one receiver (the recorder
        groups its outbox per neighbor), so the shared signature and
        digest list are amortized across the batch members.
        """
        overhead = 4 + 4 + 4  # signer + index + count framing
        if self.batch_digests:
            shared = len(self.signature) + \
                sum(len(d) for d in self.batch_digests)
            share = -(-shared // len(self.batch_digests))  # ceil div
            return len(self.payload) + overhead + share
        return len(self.payload) + len(self.signature) + overhead


def _single_root(signer: int, payload: bytes) -> bytes:
    return digest_fields(b"single", signer.to_bytes(4, "big"), payload)


def _batch_root(signer: int, digests: Sequence[bytes]) -> bytes:
    return digest_fields(b"batch", signer.to_bytes(4, "big"), *digests)


# Mutable accumulator by design: counters are merged in place.
@dataclass
class CryptoStats:  # spiderlint: disable=SPDR005
    """Counters for signature operations (for the Section 7.5 breakdown)."""

    signatures_made: int = 0
    signatures_checked: int = 0
    payloads_signed: int = 0  # counts batched payloads individually

    def merge(self, other: "CryptoStats") -> None:
        self.signatures_made += other.signatures_made
        self.signatures_checked += other.signatures_checked
        self.payloads_signed += other.payloads_signed


class Signer:
    """Signs payloads on behalf of one AS identity.

    Besides the legacy :class:`CryptoStats` counters, every operation is
    published to the instrumentation registry: ``signatures_made_total``
    / ``payloads_signed_total`` counters, a ``sign_seconds`` duration
    histogram, and a ``sign_batch_size`` histogram recording how well
    Nagle batching amortizes RSA operations (Section 6.2 / 7.5).
    """

    def __init__(self, identity: Identity,
                 stats: Optional[CryptoStats] = None,
                 registry: Optional[Registry] = None):
        self.identity = identity
        self.stats = stats if stats is not None else CryptoStats()
        self._registry = registry if registry is not None \
            else get_registry()

    @property
    def asn(self) -> int:
        return self.identity.asn

    def _observe(self, payloads: int, seconds: float) -> None:
        node = f"as{self.asn}"
        self._registry.counter("signatures_made_total", node=node).inc()
        self._registry.counter("payloads_signed_total",
                               node=node).inc(payloads)
        self._registry.histogram("sign_seconds").observe(seconds)
        self._registry.histogram("sign_batch_size").observe(payloads)

    def sign(self, payload: bytes) -> Signed:
        """Sign a single payload."""
        start = time.perf_counter()
        signature = rsa.sign(self.identity.private_key,
                             _single_root(self.asn, payload))
        self.stats.signatures_made += 1
        self.stats.payloads_signed += 1
        self._observe(1, time.perf_counter() - start)
        return Signed(signer=self.asn, payload=payload, signature=signature)

    def sign_batch(self, payloads: Sequence[bytes]) -> List[Signed]:
        """Sign several payloads with one RSA operation.

        Returns one :class:`Signed` per payload; all share the signature but
        each carries the batch digest list so it verifies independently.
        """
        if not payloads:
            return []
        if len(payloads) == 1:
            return [self.sign(payloads[0])]
        start = time.perf_counter()
        digests = tuple(digest(p) for p in payloads)
        signature = rsa.sign(self.identity.private_key,
                             _batch_root(self.asn, digests))
        self.stats.signatures_made += 1
        self.stats.payloads_signed += len(payloads)
        self._observe(len(payloads), time.perf_counter() - start)
        return [
            Signed(signer=self.asn, payload=p, signature=signature,
                   batch_digests=digests, batch_index=i)
            for i, p in enumerate(payloads)
        ]


class Verifier:
    """Verifies :class:`Signed` envelopes against a key registry.

    Publishes ``signatures_checked_total`` (labeled by outcome) and a
    ``verify_seconds`` histogram alongside the legacy counters.
    """

    def __init__(self, registry: KeyRegistry,
                 stats: Optional[CryptoStats] = None,
                 obs_registry: Optional[Registry] = None):
        self.registry = registry
        self.stats = stats if stats is not None else CryptoStats()
        self._obs = obs_registry if obs_registry is not None \
            else get_registry()

    def verify(self, signed: Signed) -> bool:
        """Check attribution and signature; False on any mismatch."""
        if not self.registry.knows(signed.signer):
            self._obs.counter("signatures_checked_total",
                              outcome="unknown_signer").inc()
            return False
        if signed.batch_digests:
            if not 0 <= signed.batch_index < len(signed.batch_digests):
                self._obs.counter("signatures_checked_total",
                                  outcome="bad_batch").inc()
                return False
            if not constant_time_eq(
                    digest(signed.payload),
                    signed.batch_digests[signed.batch_index]):
                self._obs.counter("signatures_checked_total",
                                  outcome="bad_batch").inc()
                return False
        self.stats.signatures_checked += 1
        start = time.perf_counter()
        ok = rsa.verify(self.registry.public_key(signed.signer),
                        signed.signed_bytes(), signed.signature)
        self._obs.histogram("verify_seconds").observe(
            time.perf_counter() - start)
        self._obs.counter("signatures_checked_total",
                          outcome="valid" if ok else "invalid").inc()
        return ok


class BatchSigner:
    """Nagle-style signature batching (Section 6.2).

    Payloads are queued and flushed either when the queue reaches
    ``max_batch`` or when ``flush()`` is called (the recorder calls it when
    its Nagle timer fires).  The ``on_signed`` callback receives each
    resulting envelope in queue order.
    """

    def __init__(self, signer: Signer,
                 on_signed: Callable[[Signed], None],
                 max_batch: int = 64):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self._signer = signer
        self._on_signed = on_signed
        self._max_batch = max_batch
        self._pending: List[bytes] = []

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def submit(self, payload: bytes) -> None:
        self._pending.append(payload)
        if len(self._pending) >= self._max_batch:
            self.flush()

    def flush(self) -> int:
        """Sign and emit all queued payloads; returns how many were sent."""
        if not self._pending:
            return 0
        batch, self._pending = self._pending, []
        for envelope in self._signer.sign_batch(batch):
            self._on_signed(envelope)
        return len(batch)
