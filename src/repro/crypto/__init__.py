"""Cryptographic substrate: hashing, RC4 CSPRNG, RSA, keys, envelopes.

This package satisfies assumptions 1–5 of the paper (Section 4.2): a shared
collision-resistant hash function, per-AS key pairs, unforgeable signatures,
replay protection material, and globally known public keys.
"""

from .hashing import DIGEST_SIZE, bit_commitment, digest, digest_concat, \
    digest_fields
from .keys import Identity, KeyRegistry, UnknownKeyError, make_identity
from .rc4 import Rc4, Rc4Csprng
from .rsa import PrivateKey, PublicKey, generate_keypair, sign, verify
from .signatures import BatchSigner, CryptoStats, Signed, Signer, Verifier

__all__ = [
    "DIGEST_SIZE",
    "bit_commitment",
    "digest",
    "digest_concat",
    "digest_fields",
    "Identity",
    "KeyRegistry",
    "UnknownKeyError",
    "make_identity",
    "Rc4",
    "Rc4Csprng",
    "PrivateKey",
    "PublicKey",
    "generate_keypair",
    "sign",
    "verify",
    "BatchSigner",
    "CryptoStats",
    "Signed",
    "Signer",
    "Verifier",
]
