"""Cryptographic hashing as used by SPIDeR.

The paper (Section 7.1) uses SHA-512 but keeps only the first 20 bytes of
each digest to save space.  All commitments, Merkle labels, and message
digests in this reproduction go through :func:`digest`, which applies the
same truncation.

Domain separation
-----------------
The paper composes hashes by concatenation, e.g. ``H(b_i || x_i)`` for a bit
node and ``H(l_1 || ... || l_k)`` for an inner node.  Because every label and
random bitstring has the fixed length :data:`DIGEST_SIZE`, plain
concatenation is injective on the inputs the protocol ever hashes, so no
extra framing is required to match the paper.  For hashing variable-length
application messages we provide :func:`digest_fields`, which length-prefixes
each field so distinct field tuples can never collide by concatenation.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Iterable, List, Sequence, Union

#: Number of digest bytes retained (the paper truncates SHA-512 to 20 bytes).
DIGEST_SIZE = 20

#: Underlying hash algorithm name (for documentation and sanity checks).
ALGORITHM = "sha512"

_sha512 = hashlib.sha512


def digest(data: bytes) -> bytes:
    """Return the truncated SHA-512 digest of ``data``.

    This is the hash function *H* from the paper: SHA-512 truncated to the
    first :data:`DIGEST_SIZE` bytes (Section 7.1).  ``hashlib`` consumes
    ``bytes``, ``bytearray``, and ``memoryview`` directly, so no copy is
    made on any accepted input type.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise TypeError(f"digest() requires bytes, got {type(data).__name__}")
    return _sha512(data).digest()[:DIGEST_SIZE]


def constant_time_eq(a: Union[bytes, bytearray, memoryview],
                     b: Union[bytes, bytearray, memoryview]) -> bool:
    """Timing-safe equality for digests, labels, and signatures.

    Every comparison of attacker-influenced digest/signature material
    must go through this function (lint rule SPDR002): bare ``==`` on
    bytes short-circuits at the first differing byte, leaking the
    position of the mismatch through timing.  Wraps
    :func:`hmac.compare_digest`, which compares in time independent of
    content for equal-length inputs.
    """
    return hmac.compare_digest(bytes(a), bytes(b))


def digest_concat(*parts: bytes) -> bytes:
    """Hash the plain concatenation of ``parts``.

    Mirrors the paper's ``H(l_1 || ... || l_k)``.  Callers must ensure the
    parts have fixed width (as Merkle labels do); use :func:`digest_fields`
    for variable-length data.
    """
    return digest(b"".join(parts))


def digest_fields(*fields: bytes) -> bytes:
    """Hash a tuple of variable-length byte fields unambiguously.

    Each field is prefixed with its 4-byte big-endian length, so no two
    distinct tuples produce the same preimage.
    """
    buf = bytearray()
    for field in fields:
        if not isinstance(field, (bytes, bytearray, memoryview)):
            raise TypeError(
                f"digest_fields() requires bytes, got {type(field).__name__}"
            )
        buf += len(field).to_bytes(4, "big")
        buf += field
    return digest(buf)


def digest_iter(parts: Iterable[bytes]) -> bytes:
    """Streaming variant of :func:`digest_concat` for large inputs."""
    h = hashlib.sha512()
    for part in parts:
        h.update(part)
    return h.digest()[:DIGEST_SIZE]


def bit_commitment(bit: int, blinding: bytes) -> bytes:
    """Commit to a single bit: ``H(b || x)`` from VPref step 4.

    ``bit`` must be 0 or 1; ``blinding`` is the random bitstring ``x``.  The
    bit is encoded as a single byte so the preimage has fixed layout.
    """
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit!r}")
    if len(blinding) != DIGEST_SIZE:
        raise ValueError(
            f"blinding must be {DIGEST_SIZE} bytes (same length as a hash "
            f"value, per Section 5.3), got {len(blinding)}"
        )
    return digest((b"\x01" if bit else b"\x00") + blinding)


def bit_commitments(bits: Sequence[int],
                    blindings: Sequence[bytes]) -> List[bytes]:
    """Batch :func:`bit_commitment`: one commitment per (bit, blinding).

    Labeling an MTT commits to every bit node — hundreds of thousands of
    tiny ``H(b || x)`` hashes per commitment round — so the per-call
    validation and lookup overhead of :func:`bit_commitment` is hoisted
    out of the loop here.  Output is element-wise identical to calling
    :func:`bit_commitment` in a loop (tested).
    """
    if len(bits) != len(blindings):
        raise ValueError("bits and blindings must have equal length")
    sha = _sha512
    size = DIGEST_SIZE
    one, zero = b"\x01", b"\x00"
    out: List[bytes] = []
    append = out.append
    for bit, blinding in zip(bits, blindings):
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if len(blinding) != size:
            raise ValueError(
                f"blinding must be {size} bytes, got {len(blinding)}")
        append(sha((one if bit else zero) + blinding).digest()[:size])
    return out
