"""RC4 stream cipher and the CSPRNG used for MTT blinding strings.

The SPIDeR prototype (Section 7.1) implements its cryptographically secure
pseudo-random number generator by "encrypting sequences of zeroes with RC4,
discarding the first 3,072 bytes to mitigate known weaknesses in RC4".  The
generator is seeded with a fresh secret per commitment (Section 6.5) so the
proof generator can later *reconstruct* the blinding bitstrings from the
stored seed instead of storing every bitstring.

RC4 is obsolete as a cipher; it is reproduced here because the paper's
storage result (32 bytes of MTT data per commitment, Section 7.7) depends on
exactly this reconstruct-from-seed design.  Nothing outside this module
depends on RC4 specifically — any deterministic seeded generator with the
same interface would do.
"""

from __future__ import annotations

from .hashing import DIGEST_SIZE

#: Bytes of keystream discarded after keying, per the paper (RC4-drop3072).
DROP_BYTES = 3072


class Rc4:
    """Plain RC4 keystream generator (KSA + PRGA)."""

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 256:
            raise ValueError("RC4 key must be between 1 and 256 bytes")
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def keystream(self, n: int) -> bytes:
        """Return the next ``n`` keystream bytes."""
        if n < 0:
            raise ValueError("keystream length must be non-negative")
        state = self._state
        i, j = self._i, self._j
        out = bytearray(n)
        for k in range(n):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            out[k] = state[(state[i] + state[j]) & 0xFF]
        self._i, self._j = i, j
        return bytes(out)

    def encrypt(self, data: bytes) -> bytes:
        """XOR ``data`` with the keystream (encryption == decryption)."""
        stream = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, stream))


class Rc4Csprng:
    """Seeded deterministic generator for blinding bitstrings.

    Encrypting zeroes with RC4 yields the raw keystream, so this simply
    drops :data:`DROP_BYTES` and then serves keystream bytes.  Two instances
    built from the same seed produce identical output, which is what lets
    the proof generator rebuild a past MTT's random bitstrings from the
    32-byte stored seed (Section 6.5).
    """

    def __init__(self, seed: bytes):
        if len(seed) == 0:
            raise ValueError("CSPRNG seed must be non-empty")
        self._seed = bytes(seed)
        self._rc4 = Rc4(self._seed[:256])
        self._rc4.keystream(DROP_BYTES)

    @property
    def seed(self) -> bytes:
        """The seed this generator was built from (stored in the log)."""
        return self._seed

    def bitstring(self) -> bytes:
        """Return one blinding bitstring.

        Per Section 5.3, all random bitstrings must have the same length as
        a hash value so that dummy labels are indistinguishable from real
        Merkle labels.
        """
        return self._rc4.keystream(DIGEST_SIZE)

    def bytes(self, n: int) -> bytes:
        """Return ``n`` raw pseudo-random bytes."""
        return self._rc4.keystream(n)
