"""RC4 stream cipher and the CSPRNG used for MTT blinding strings.

The SPIDeR prototype (Section 7.1) implements its cryptographically secure
pseudo-random number generator by "encrypting sequences of zeroes with RC4,
discarding the first 3,072 bytes to mitigate known weaknesses in RC4".  The
generator is seeded with a fresh secret per commitment (Section 6.5) so the
proof generator can later *reconstruct* the blinding bitstrings from the
stored seed instead of storing every bitstring.

RC4 is obsolete as a cipher; it is reproduced here because the paper's
storage result (32 bytes of MTT data per commitment, Section 7.7) depends on
exactly this reconstruct-from-seed design.  Nothing outside this module
depends on RC4 specifically — any deterministic seeded generator with the
same interface would do.

Performance
-----------
Labeling an MTT draws one 20-byte bitstring per bit node and per dummy
node — hundreds of thousands of draws per commitment — so the PRGA loop
and the per-draw call overhead are both on the commitment hot path
(§7.5).  :class:`Rc4Csprng` therefore generates keystream in large blocks
and slices bitstrings out of the buffer, and :class:`Rc4` walks a
precomputed ``i``-index pattern so the inner loop avoids the per-byte
increment-and-mask and re-reads of ``S[i]``/``S[j]``.  The output stream
is byte-identical to the textbook formulation (the unit tests pin RFC
6229 vectors and blocked-vs-unblocked equivalence).
"""

from __future__ import annotations

from typing import List

from .hashing import DIGEST_SIZE

#: Bytes of keystream discarded after keying, per the paper (RC4-drop3072).
DROP_BYTES = 3072

#: Keystream bytes generated per buffer refill in :class:`Rc4Csprng`.
BLOCK_BYTES = 8192

#: The PRGA ``i`` index cycles 0..255; precomputing the pattern lets the
#: inner loop iterate over it directly instead of computing
#: ``(i + 1) & 0xFF`` per byte.  17 repetitions cover one 4096-byte chunk
#: from any starting offset.
_CHUNK = 4096
_IDX = tuple(range(256)) * (_CHUNK // 256 + 1)


class Rc4:
    """Plain RC4 keystream generator (KSA + PRGA)."""

    __slots__ = ("_state", "_i", "_j")

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 256:
            raise ValueError("RC4 key must be between 1 and 256 bytes")
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def keystream(self, n: int) -> bytes:
        """Return the next ``n`` keystream bytes."""
        if n < 0:
            raise ValueError("keystream length must be non-negative")
        S = self._state
        i, j = self._i, self._j
        out = bytearray()
        append = out.append
        remaining = n
        while remaining > 0:
            chunk = remaining if remaining < _CHUNK else _CHUNK
            start = (i + 1) & 0xFF
            for i in _IDX[start:start + chunk]:
                x = S[i]
                j = (j + x) & 0xFF
                y = S[j]
                S[i] = y
                S[j] = x
                append(S[(x + y) & 0xFF])
            remaining -= chunk
        self._i, self._j = i, j
        return bytes(out)

    def encrypt(self, data: bytes) -> bytes:
        """XOR ``data`` with the keystream (encryption == decryption)."""
        stream = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, stream))


class Rc4Csprng:
    """Seeded deterministic generator for blinding bitstrings.

    Encrypting zeroes with RC4 yields the raw keystream, so this simply
    drops :data:`DROP_BYTES` and then serves keystream bytes.  Two instances
    built from the same seed produce identical output, which is what lets
    the proof generator rebuild a past MTT's random bitstrings from the
    32-byte stored seed (Section 6.5).

    Keystream is generated in :data:`BLOCK_BYTES` blocks and buffered;
    :meth:`bitstring`, :meth:`bitstrings`, and :meth:`bytes` all slice the
    buffer, so the byte sequence served is independent of how draws are
    batched (blocked output == unblocked output, tested).
    """

    __slots__ = ("_seed", "_rc4", "_buf", "_pos")

    def __init__(self, seed: bytes):
        if len(seed) == 0:
            raise ValueError("CSPRNG seed must be non-empty")
        self._seed = bytes(seed)
        self._rc4 = Rc4(self._seed[:256])
        self._rc4.keystream(DROP_BYTES)
        self._buf = b""
        self._pos = 0

    @property
    def seed(self) -> bytes:
        """The seed this generator was built from (stored in the log)."""
        return self._seed

    def bitstring(self) -> bytes:
        """Return one blinding bitstring.

        :spiderlint-contract: source(commit-randomness)

        Per Section 5.3, all random bitstrings must have the same length as
        a hash value so that dummy labels are indistinguishable from real
        Merkle labels.  The bitstring is private until it enters a bit
        commitment ``H(b||x)`` or is selectively revealed by a proof.
        """
        pos = self._pos
        end = pos + DIGEST_SIZE
        if end <= len(self._buf):
            self._pos = end
            return self._buf[pos:end]
        return self.bytes(DIGEST_SIZE)

    def bitstrings(self, n: int) -> List[bytes]:
        """Return ``n`` consecutive bitstrings in one buffered draw.

        :spiderlint-contract: source(commit-randomness)

        Equivalent to ``[self.bitstring() for _ in range(n)]`` but pays
        the keystream-generation cost once — the labeling pass uses this
        to blind an entire MTT in a handful of block refills.
        """
        data = self.bytes(n * DIGEST_SIZE)
        size = DIGEST_SIZE
        return [data[i:i + size] for i in range(0, n * size, size)]

    def bytes(self, n: int) -> bytes:
        """Return ``n`` raw pseudo-random bytes."""
        if n < 0:
            raise ValueError("byte count must be non-negative")
        buf, pos = self._buf, self._pos
        avail = len(buf) - pos
        if n <= avail:
            self._pos = pos + n
            return buf[pos:pos + n]
        head = buf[pos:]
        need = n - avail
        # Refill with at least one full block so small draws amortize.
        fresh = self._rc4.keystream(need if need > BLOCK_BYTES
                                    else BLOCK_BYTES)
        self._buf = fresh
        self._pos = need
        return head + fresh[:need]
