"""Tests for the NetReview baseline: detection parity, full disclosure,
and the missing-MTT cost structure."""

import pytest

from repro.bgp.prefix import Prefix
from repro.core.verdict import FaultKind
from repro.faults.injector import FilteringRecorder, install_import_filter
from repro.netreview.auditor import disclosure_bytes
from repro.netreview.node import NetReviewDeployment
from repro.netsim.network import Network, TraceEvent
from repro.netsim.topology import FOCUS_AS, INJECTION_AS, figure5_topology
from repro.spider.config import SpiderConfig
from repro.spider.node import evaluation_scheme

FEED = 65000
P = Prefix.parse("203.0.113.0/24")
GOOD = Prefix.parse("192.0.2.0/24")


def build(with_filter_fault=False, naive_promises=False):
    network = Network(figure5_topology())
    if naive_promises:
        # The paper's evaluation setup: one global path-length scheme and
        # a shortest-route promise to everyone.
        deployment = NetReviewDeployment(network,
                                         scheme=evaluation_scheme(10),
                                         config=SpiderConfig())
    else:
        # Promises provably consistent with Gao-Rexford export filtering.
        from repro.spider.promises import GaoRexfordPromises
        grp = GaoRexfordPromises(network.topology, max_length=8)
        deployment = NetReviewDeployment(network,
                                         config=SpiderConfig(),
                                         scheme_factory=grp.scheme_for,
                                         promise_factory=grp.promise_for)
    if with_filter_fault:
        install_import_filter(
            network.speaker(FOCUS_AS),
            lambda route, neighbor: neighbor == 7 and
            route.prefix == GOOD)
    network.attach_feed(INJECTION_AS, feed_asn=FEED)
    network.schedule_trace(FEED, [
        TraceEvent(1.0, P, (FEED, 4000)),
        TraceEvent(1.2, GOOD, (FEED, 4001, 4002, 9)),
    ])
    network.originate(9, GOOD)
    network.settle()
    return network, deployment


class TestHonestAudit:
    def test_clean(self):
        network, deployment = build()
        deployment.recorder(FOCUS_AS).make_commitment()
        for report in deployment.audit_all_neighbors(FOCUS_AS):
            assert report.ok, [str(f) for f in report.findings]

    def test_audits_cover_known_prefixes(self):
        network, deployment = build()
        report = deployment.audit(FOCUS_AS, auditor=7)
        assert report.prefixes_checked >= 2

    def test_epoch_markers_logged_without_mtt(self):
        network, deployment = build()
        record = deployment.recorder(FOCUS_AS).make_commitment()
        assert record.root == b""
        assert record.census_total == 0

    def test_no_mtt_cpu_section(self):
        """The §7.5 comparison: NetReview = SPIDeR minus MTT cost."""
        network, deployment = build()
        deployment.recorder(FOCUS_AS).make_commitment()
        cpu = deployment.recorder(FOCUS_AS).cpu
        assert "mtt" not in cpu.seconds_by_section
        assert cpu.seconds_by_section.get("signatures", 0) > 0


class TestNaivePromiseInconsistency:
    def test_naive_shortest_route_promise_conflicts_with_gao_rexford(self):
        """A 'shortest route to everyone' promise cannot coexist with
        valley-free export filtering (the §3.2 path-length caveat): a
        full-disclosure audit flags the suppressed exports."""
        network, deployment = build(naive_promises=True)
        reports = deployment.audit_all_neighbors(FOCUS_AS)
        findings = [f for r in reports for f in r.findings]
        assert findings  # provider-learned routes withheld from peers

    def test_gao_rexford_promises_resolve_it(self):
        network, deployment = build(naive_promises=False)
        reports = deployment.audit_all_neighbors(FOCUS_AS)
        assert all(r.ok for r in reports)


class TestDetectionParity:
    def test_filter_fault_detected_by_audit(self):
        """NetReview detects the same over-aggressive-filter fault SPIDeR
        does — by reading the victim's full log."""
        network, deployment = build(with_filter_fault=True)
        reports = deployment.audit_all_neighbors(FOCUS_AS)
        findings = [f for r in reports for f in r.findings]
        assert findings
        assert all(f.kind is FaultKind.BROKEN_PROMISE for f in findings)
        assert any(f.prefix == GOOD for f in findings)


class TestDisclosure:
    def test_audit_reveals_full_message_stream(self):
        """The privacy cost: every audit discloses the whole log —
        orders of magnitude more of the AS's private routing state than
        a SPIDeR proof reveals about *other* prefixes (nothing)."""
        network, deployment = build()
        report = deployment.audit(FOCUS_AS, auditor=7)
        log = deployment.recorder(FOCUS_AS).log
        assert report.disclosed_bytes == disclosure_bytes(log)
        assert report.disclosed_bytes > 0

    def test_disclosure_grows_with_traffic(self):
        network, deployment = build()
        before = disclosure_bytes(deployment.recorder(FOCUS_AS).log)
        network.schedule_trace(FEED, [
            TraceEvent(network.sim.now + 1.0,
                       Prefix.parse("198.51.100.0/24"),
                       (FEED, 4003)),
        ])
        network.settle()
        after = disclosure_bytes(deployment.recorder(FOCUS_AS).log)
        assert after > before

    def test_tampered_log_rejected_by_auditor(self):
        import dataclasses
        from repro.spider.log import TamperError
        network, deployment = build()
        log = deployment.recorder(FOCUS_AS).log
        log._entries[0] = dataclasses.replace(log._entries[0],
                                              size_bytes=1)
        with pytest.raises(TamperError):
            deployment.audit(FOCUS_AS, auditor=7)
