"""Shared hypothesis strategies for the whole test suite.

One home for every generator that more than one test module draws
from: wire messages (codec round-trips and corruption fuzz), durable
log payloads (store recovery fuzz), and campaign coordinates (the
adversarial campaign property tests).  Keeping them here means a new
wire field is added to exactly one strategy and every fuzz suite picks
it up.

Strategies are deliberately structural: signatures are arbitrary bytes
(the codec moves envelopes, it does not verify them) and digests are
fixed-width random bytes.
"""

from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.route import Origin, Route
from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.signatures import Signed
from repro.faults.adversaries import ATTACK_CLASSES
from repro.mtt.proofs import MttBitProof, PathStep
from repro.spider.checkpoint import RoutingState
from repro.spider.wire import SpiderAck, SpiderAnnounce, SpiderBitProof, \
    SpiderCommitment, SpiderWithdraw

# ----------------------------------------------------------------------
# Scalars

asns = st.integers(min_value=1, max_value=2**32 - 1)
#: Millisecond-grid timestamps, the codec's declared resolution.
timestamps = st.integers(min_value=0, max_value=2**40).map(
    lambda ms: ms / 1000.0)
digests = st.binary(min_size=DIGEST_SIZE, max_size=DIGEST_SIZE)


# ----------------------------------------------------------------------
# BGP objects


@st.composite
def prefixes(draw):
    length = draw(st.integers(min_value=0, max_value=32))
    address = draw(st.integers(min_value=0, max_value=2**32 - 1))
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return Prefix(address=address & mask, length=length)


@st.composite
def routes(draw):
    path = draw(st.lists(asns, min_size=0, max_size=8, unique=True))
    communities = draw(st.frozensets(
        st.tuples(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1)),
        max_size=4))
    return Route(
        prefix=draw(prefixes()),
        as_path=tuple(path),
        neighbor=draw(st.integers(0, 2**32 - 1)),
        local_pref=draw(st.integers(-2**31, 2**31 - 1)),
        med=draw(st.integers(0, 2**32 - 1)),
        origin=draw(st.sampled_from(list(Origin))),
        communities=communities,
        router_id=draw(st.integers(0, 2**32 - 1)),
    )


# ----------------------------------------------------------------------
# Wire messages


@st.composite
def signed_envelopes(draw):
    n_batch = draw(st.integers(min_value=0, max_value=3))
    batch = tuple(draw(digests) for _ in range(n_batch))
    index = draw(st.integers(0, n_batch - 1)) if n_batch else 0
    return Signed(
        signer=draw(asns),
        payload=draw(st.binary(max_size=64)),
        signature=draw(st.binary(min_size=1, max_size=128)),
        batch_digests=batch,
        batch_index=index,
    )


@st.composite
def announces(draw):
    return SpiderAnnounce(
        sender=draw(asns), receiver=draw(asns),
        timestamp=draw(timestamps), route=draw(routes()),
        underlying=draw(st.none() | signed_envelopes()),
        route_sig=draw(signed_envelopes()),
        envelope=draw(signed_envelopes()),
        reannounce=draw(st.booleans()),
    )


@st.composite
def withdraws(draw):
    return SpiderWithdraw(
        sender=draw(asns), receiver=draw(asns),
        timestamp=draw(timestamps), prefix=draw(prefixes()),
        envelope=draw(signed_envelopes()),
    )


@st.composite
def acks(draw):
    return SpiderAck(
        acker=draw(asns), sender=draw(asns),
        timestamp=draw(timestamps),
        message_hash=draw(st.binary(max_size=40)),
        envelope=draw(signed_envelopes()),
    )


@st.composite
def commitments(draw):
    return SpiderCommitment(
        elector=draw(asns), commit_time=draw(timestamps),
        root=draw(digests), envelope=draw(signed_envelopes()),
    )


@st.composite
def bit_proofs(draw):
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        n_children = draw(st.integers(min_value=1, max_value=4))
        steps.append(PathStep(
            child_labels=tuple(draw(digests)
                               for _ in range(n_children)),
            child_index=draw(st.integers(0, n_children - 1)),
        ))
    proof = MttBitProof(
        prefix=draw(prefixes()),
        class_index=draw(st.integers(0, 2**16)),
        bit=draw(st.integers(0, 1)),
        blinding=draw(digests),
        steps=tuple(steps),
    )
    return SpiderBitProof(
        elector=draw(asns), recipient=draw(asns),
        commit_time=draw(timestamps), proof=proof,
        envelope=draw(signed_envelopes()),
    )


def messages():
    """Any frame-codec message."""
    return st.one_of(announces(), withdraws(), acks(), commitments(),
                     bit_proofs())


# ----------------------------------------------------------------------
# Durable log payloads


@st.composite
def routing_states(draw):
    state = RoutingState()
    for table in (state.imports, state.exports):
        for _ in range(draw(st.integers(0, 2))):
            neighbor = draw(st.integers(1, 65535))
            route = draw(routes())
            table.setdefault(neighbor, {})[route.prefix] = route
    state.origins = set(draw(st.lists(prefixes(), max_size=2)))
    return state


def commitment_payloads():
    return st.fixed_dictionaries({
        "seed": st.binary(min_size=0, max_size=32),
        "root": st.binary(min_size=0, max_size=32),
    })


# ----------------------------------------------------------------------
# Campaign coordinates
#
# A campaign is fully determined by ``(seed, index)``; the engine seeds
# its generator from ``f"{seed}:{index}"`` and picks the attack class
# round-robin over ATTACK_CLASSES.  These strategies let property tests
# roam the coordinate space without hand-picking sweeps.

campaign_seeds = st.integers(min_value=0, max_value=2**32 - 1)
campaign_indices = st.integers(min_value=0,
                               max_value=4 * len(ATTACK_CLASSES) - 1)


@st.composite
def campaign_coordinates(draw):
    """A ``(seed, index)`` pair addressing one campaign."""
    return draw(campaign_seeds), draw(campaign_indices)
