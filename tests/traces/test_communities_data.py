"""Tests for the Figure 2 survey dataset and synthetic population."""

from repro.bgp.communities import ActionKind
from repro.traces.communities_data import FIGURE2_COUNTS, SURVEY_SIZE, \
    figure2_rows, survey_counts, synthetic_survey


class TestFigure2Reference:
    def test_row_values_match_paper(self):
        rows = dict(figure2_rows())
        assert rows["Set local preference"] == 57
        assert rows["Selective export by neighbor group"] == 48
        assert rows["Selective export by specific AS"] == 45
        assert rows["Information about route origin"] == 45

    def test_row_order_matches_paper(self):
        labels = [label for label, _ in figure2_rows()]
        assert labels[0] == "Set local preference"
        assert labels[-1] == "Information about route origin"

    def test_percentages_match_section_3_2(self):
        # §3.2 quotes 64% for local-pref, 54% group export, 51% AS export.
        assert round(57 / SURVEY_SIZE * 100) == 65 or \
            int(57 / SURVEY_SIZE * 100) == 64
        assert round(48 / SURVEY_SIZE * 100) == 55 or \
            int(48 / SURVEY_SIZE * 100) == 54
        assert int(45 / SURVEY_SIZE * 100) == 51


class TestSyntheticSurvey:
    def test_marginals_match_figure2(self):
        menus = synthetic_survey(seed=1)
        counts = survey_counts(menus)
        for kind, expected in FIGURE2_COUNTS.items():
            assert counts[kind] == expected

    def test_population_size(self):
        assert len(synthetic_survey(seed=1)) == SURVEY_SIZE

    def test_deterministic(self):
        a = survey_counts(synthetic_survey(seed=2))
        b = survey_counts(synthetic_survey(seed=2))
        assert a == b

    def test_scaled_population(self):
        menus = synthetic_survey(seed=1, size=44)
        counts = survey_counts(menus)
        # Half-size survey: counts scale proportionally (rounded).
        assert counts[ActionKind.SET_LOCAL_PREF] == round(57 * 44 / 88)

    def test_tier_distribution_mode_three_max_twelve(self):
        menus = synthetic_survey(seed=3)
        tier_counts = [m.local_pref_tier_count() for m in menus
                       if m.supports(ActionKind.SET_LOCAL_PREF)]
        assert max(tier_counts) <= 12
        mode = max(set(tier_counts), key=tier_counts.count)
        assert mode == 3

    def test_menus_have_valid_actions(self):
        from repro.bgp.communities import CommunityAction
        for menu in synthetic_survey(seed=4):
            for action in menu.actions:
                assert isinstance(action, CommunityAction)
