"""Tests for the synthetic workload and trace generators."""

import pytest

from repro.traces.routeviews import TraceConfig, synthetic_trace
from repro.traces.workload import generate_path, generate_prefixes, \
    generate_rib_snapshot, length_histogram

import random


class TestGeneratePrefixes:
    def test_count_and_uniqueness(self):
        prefixes = generate_prefixes(500, seed=1)
        assert len(prefixes) == 500
        assert len(set(prefixes)) == 500

    def test_deterministic(self):
        assert generate_prefixes(100, seed=7) == \
            generate_prefixes(100, seed=7)

    def test_different_seeds_differ(self):
        assert generate_prefixes(100, seed=1) != \
            generate_prefixes(100, seed=2)

    def test_dfz_like_length_mix(self):
        prefixes = generate_prefixes(3000, seed=1)
        histogram = length_histogram(prefixes)
        # /24 dominates, like any real DFZ table.
        assert histogram[24] == max(histogram.values())
        assert histogram[24] / len(prefixes) > 0.3
        # Lengths stay in the realistic 8..24 band.
        assert min(histogram) >= 8 and max(histogram) <= 24

    def test_unicast_space_only(self):
        for prefix in generate_prefixes(500, seed=3):
            first_octet = prefix.address >> 24
            assert 0 < first_octet <= 223

    def test_zero_count(self):
        assert generate_prefixes(0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            generate_prefixes(-1)


class TestGeneratePath:
    def test_starts_at_first_hop(self):
        rng = random.Random(0)
        path = generate_path(rng, list(range(100, 200)), first_hop=65000)
        assert path[0] == 65000

    def test_loop_free(self):
        rng = random.Random(0)
        for _ in range(200):
            path = generate_path(rng, list(range(100, 130)),
                                 first_hop=65000)
            assert len(set(path)) == len(path)

    def test_realistic_lengths(self):
        rng = random.Random(0)
        lengths = [len(generate_path(rng, list(range(100, 300)), 65000))
                   for _ in range(500)]
        mean = sum(lengths) / len(lengths)
        assert 2.5 <= mean <= 5.5
        assert max(lengths) <= 8


class TestRibSnapshot:
    def test_entries_have_feed_first_hop(self):
        snapshot = generate_rib_snapshot(50, seed=0, feed_asn=65000)
        assert len(snapshot) == 50
        assert all(e.path[0] == 65000 for e in snapshot)

    def test_deterministic(self):
        a = generate_rib_snapshot(50, seed=5)
        b = generate_rib_snapshot(50, seed=5)
        assert a == b


class TestSyntheticTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_trace(TraceConfig(scale=0.003, seed=11))

    def test_scaled_counts(self, trace):
        config = trace.config
        assert len(trace.snapshot) == config.n_prefixes
        assert trace.message_count() == config.n_messages

    def test_phases_ordered(self, trace):
        assert all(0 < e.time <= trace.setup_end
                   for e in trace.setup_events)
        assert all(trace.setup_end <= e.time <= trace.replay_end + 1e-9
                   for e in trace.replay_events)

    def test_replay_sorted_by_time(self, trace):
        times = [e.time for e in trace.replay_events]
        assert times == sorted(times)

    def test_setup_announces_every_snapshot_prefix(self, trace):
        setup_prefixes = {e.prefix for e in trace.setup_events}
        assert setup_prefixes == {e.prefix for e in trace.snapshot}
        assert all(not e.is_withdrawal for e in trace.setup_events)

    def test_replay_contains_both_kinds(self, trace):
        withdrawals = sum(1 for e in trace.replay_events
                          if e.is_withdrawal)
        assert 0 < withdrawals < trace.message_count()

    def test_replay_churn_is_concentrated(self, trace):
        touched = {e.prefix for e in trace.replay_events}
        assert len(touched) <= len(trace.snapshot) * \
            trace.config.hot_fraction * 1.5

    def test_no_double_withdrawals(self, trace):
        down = set()
        for event in trace.replay_events:
            if event.is_withdrawal:
                assert event.prefix not in down
                down.add(event.prefix)
            else:
                down.discard(event.prefix)

    def test_deterministic(self):
        config = TraceConfig(scale=0.002, seed=9)
        assert synthetic_trace(config).replay_events == \
            synthetic_trace(config).replay_events

    def test_bursty_arrivals(self, trace):
        """Many events share identical timestamps (burst structure)."""
        times = [e.time for e in trace.replay_events]
        distinct = len(set(times))
        assert distinct < len(times) * 0.8
