"""Unit tests for RC4 and the drop-3072 CSPRNG."""

import pytest

from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.rc4 import DROP_BYTES, Rc4, Rc4Csprng


class TestRc4:
    def test_known_vector_key_key(self):
        # RFC 6229-era classic test vector: Key "Key", plaintext "Plaintext".
        cipher = Rc4(b"Key")
        assert cipher.encrypt(b"Plaintext") == \
            bytes.fromhex("BBF316E8D940AF0AD3")

    def test_known_vector_wiki(self):
        cipher = Rc4(b"Wiki")
        assert cipher.encrypt(b"pedia") == bytes.fromhex("1021BF0420")

    def test_known_vector_secret(self):
        cipher = Rc4(b"Secret")
        assert cipher.encrypt(b"Attack at dawn") == \
            bytes.fromhex("45A01F645FC35B383552544B9BF5")

    def test_encrypt_decrypt_roundtrip(self):
        plaintext = b"the elector had a better route"
        ciphertext = Rc4(b"k1").encrypt(plaintext)
        assert Rc4(b"k1").encrypt(ciphertext) == plaintext

    def test_keystream_is_stateful(self):
        cipher = Rc4(b"k")
        first = cipher.keystream(10)
        second = cipher.keystream(10)
        assert first != second
        assert Rc4(b"k").keystream(20) == first + second

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            Rc4(b"")

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            Rc4(bytes(257))

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Rc4(b"k").keystream(-1)

    def test_zero_length_keystream(self):
        assert Rc4(b"k").keystream(0) == b""


class TestRfc6229Vectors:
    """RFC 6229 keystream tables (the official RC4 test vectors)."""

    def test_40_bit_key(self):
        ks = Rc4(bytes([0x01, 0x02, 0x03, 0x04, 0x05])).keystream(4112)
        assert ks[0:16].hex() == "b2396305f03dc027ccc3524a0a1118a8"
        assert ks[16:32].hex() == "6982944f18fc82d589c403a47a0d0919"
        assert ks[240:256].hex() == "28cb1132c96ce286421dcaadb8b69eae"
        assert ks[4096:4112].hex() == "ff25b58995996707e51fbdf08b34d875"

    def test_128_bit_key(self):
        key = bytes(range(0x01, 0x11))
        ks = Rc4(key).keystream(32)
        assert ks[0:16].hex() == "9ac7cc9a609d1ef7b2932899cde41b97"
        assert ks[16:32].hex() == "5248c4959014126a6e8a84f11d1a9e1c"


class TestBlockedKeystream:
    """The blocked CSPRNG buffer must be invisible in the output."""

    def test_bytes_match_unbuffered_stream(self):
        # Mixed small/large draws across block boundaries equal one
        # contiguous post-drop keystream.
        raw = Rc4(b"blocked")
        raw.keystream(DROP_BYTES)
        gen = Rc4Csprng(b"blocked")
        draws = [1, 7, 8192, 20, 16384 + 3, 5, 8191]
        out = b"".join(gen.bytes(n) for n in draws)
        assert out == raw.keystream(sum(draws))

    def test_bitstrings_equal_repeated_bitstring(self):
        a = Rc4Csprng(b"batch")
        b = Rc4Csprng(b"batch")
        assert a.bitstrings(300) == [b.bitstring() for _ in range(300)]

    def test_bitstrings_zero(self):
        gen = Rc4Csprng(b"batch")
        assert gen.bitstrings(0) == []
        # The zero-length draw must not consume stream position.
        assert gen.bitstring() == Rc4Csprng(b"batch").bitstring()


class TestRc4Csprng:
    def test_deterministic_given_seed(self):
        a = Rc4Csprng(b"seed-123")
        b = Rc4Csprng(b"seed-123")
        assert [a.bitstring() for _ in range(5)] == \
            [b.bitstring() for _ in range(5)]

    def test_different_seeds_diverge(self):
        assert Rc4Csprng(b"s1").bitstring() != Rc4Csprng(b"s2").bitstring()

    def test_drops_initial_keystream(self):
        # The CSPRNG output must equal raw RC4 keystream offset by 3072.
        raw = Rc4(b"seed")
        raw.keystream(DROP_BYTES)
        assert Rc4Csprng(b"seed").bytes(16) == raw.keystream(16)

    def test_bitstring_length_matches_digest(self):
        assert len(Rc4Csprng(b"s").bitstring()) == DIGEST_SIZE

    def test_seed_property_round_trips(self):
        gen = Rc4Csprng(b"my-seed")
        assert gen.seed == b"my-seed"
        # Rebuilding from the stored seed reproduces the stream — this is
        # the property Section 6.5 relies on for MTT reconstruction.
        replay = Rc4Csprng(gen.seed)
        gen_out = [gen.bitstring() for _ in range(3)]
        assert [replay.bitstring() for _ in range(3)] == gen_out

    def test_rejects_empty_seed(self):
        with pytest.raises(ValueError):
            Rc4Csprng(b"")

    def test_successive_bitstrings_differ(self):
        gen = Rc4Csprng(b"s")
        outputs = {gen.bitstring() for _ in range(100)}
        assert len(outputs) == 100
