"""Unit tests for RC4 and the drop-3072 CSPRNG."""

import pytest

from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.rc4 import DROP_BYTES, Rc4, Rc4Csprng


class TestRc4:
    def test_known_vector_key_key(self):
        # RFC 6229-era classic test vector: Key "Key", plaintext "Plaintext".
        cipher = Rc4(b"Key")
        assert cipher.encrypt(b"Plaintext") == \
            bytes.fromhex("BBF316E8D940AF0AD3")

    def test_known_vector_wiki(self):
        cipher = Rc4(b"Wiki")
        assert cipher.encrypt(b"pedia") == bytes.fromhex("1021BF0420")

    def test_known_vector_secret(self):
        cipher = Rc4(b"Secret")
        assert cipher.encrypt(b"Attack at dawn") == \
            bytes.fromhex("45A01F645FC35B383552544B9BF5")

    def test_encrypt_decrypt_roundtrip(self):
        plaintext = b"the elector had a better route"
        ciphertext = Rc4(b"k1").encrypt(plaintext)
        assert Rc4(b"k1").encrypt(ciphertext) == plaintext

    def test_keystream_is_stateful(self):
        cipher = Rc4(b"k")
        first = cipher.keystream(10)
        second = cipher.keystream(10)
        assert first != second
        assert Rc4(b"k").keystream(20) == first + second

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            Rc4(b"")

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            Rc4(bytes(257))

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            Rc4(b"k").keystream(-1)

    def test_zero_length_keystream(self):
        assert Rc4(b"k").keystream(0) == b""


class TestRc4Csprng:
    def test_deterministic_given_seed(self):
        a = Rc4Csprng(b"seed-123")
        b = Rc4Csprng(b"seed-123")
        assert [a.bitstring() for _ in range(5)] == \
            [b.bitstring() for _ in range(5)]

    def test_different_seeds_diverge(self):
        assert Rc4Csprng(b"s1").bitstring() != Rc4Csprng(b"s2").bitstring()

    def test_drops_initial_keystream(self):
        # The CSPRNG output must equal raw RC4 keystream offset by 3072.
        raw = Rc4(b"seed")
        raw.keystream(DROP_BYTES)
        assert Rc4Csprng(b"seed").bytes(16) == raw.keystream(16)

    def test_bitstring_length_matches_digest(self):
        assert len(Rc4Csprng(b"s").bitstring()) == DIGEST_SIZE

    def test_seed_property_round_trips(self):
        gen = Rc4Csprng(b"my-seed")
        assert gen.seed == b"my-seed"
        # Rebuilding from the stored seed reproduces the stream — this is
        # the property Section 6.5 relies on for MTT reconstruction.
        replay = Rc4Csprng(gen.seed)
        gen_out = [gen.bitstring() for _ in range(3)]
        assert [replay.bitstring() for _ in range(3)] == gen_out

    def test_rejects_empty_seed(self):
        with pytest.raises(ValueError):
            Rc4Csprng(b"")

    def test_successive_bitstrings_differ(self):
        gen = Rc4Csprng(b"s")
        outputs = {gen.bitstring() for _ in range(100)}
        assert len(outputs) == 100
