"""Tests for the key registry and the signed-envelope / batching layer."""

import pytest

from repro.crypto import rsa
from repro.crypto.keys import KeyRegistry, UnknownKeyError, make_identity
from repro.crypto.signatures import BatchSigner, CryptoStats, Signed, \
    Signer, Verifier

BITS = 512


@pytest.fixture()
def registry():
    return KeyRegistry()


@pytest.fixture()
def alice(registry):
    return make_identity(asn=1, registry=registry, bits=BITS, seed=101)


@pytest.fixture()
def bob(registry):
    return make_identity(asn=2, registry=registry, bits=BITS, seed=102)


class TestKeyRegistry:
    def test_register_and_lookup(self, registry, alice):
        assert registry.public_key(1) == alice.public_key
        assert registry.knows(1)

    def test_unknown_as_raises(self, registry):
        with pytest.raises(UnknownKeyError):
            registry.public_key(999)

    def test_reregistering_same_key_is_idempotent(self, registry, alice):
        registry.register(1, alice.public_key)
        assert len(registry) == 1

    def test_key_substitution_rejected(self, registry, alice):
        other = rsa.generate_keypair(bits=BITS, seed=103)
        with pytest.raises(ValueError):
            registry.register(1, other.public_key)

    def test_iteration_and_len(self, registry, alice, bob):
        assert sorted(registry) == [1, 2]
        assert len(registry) == 2


class TestSignerVerifier:
    def test_sign_verify_roundtrip(self, registry, alice):
        signer = Signer(alice)
        verifier = Verifier(registry)
        env = signer.sign(b"payload")
        assert env.signer == 1
        assert verifier.verify(env)

    def test_tampered_payload_rejected(self, registry, alice):
        env = Signer(alice).sign(b"payload")
        forged = Signed(signer=env.signer, payload=b"other",
                        signature=env.signature)
        assert not Verifier(registry).verify(forged)

    def test_signer_impersonation_rejected(self, registry, alice, bob):
        # Bob relabels Alice's envelope as his own.
        env = Signer(alice).sign(b"payload")
        forged = Signed(signer=bob.asn, payload=env.payload,
                        signature=env.signature)
        assert not Verifier(registry).verify(forged)

    def test_unknown_signer_rejected(self, registry, alice):
        env = Signer(alice).sign(b"p")
        forged = Signed(signer=42, payload=env.payload,
                        signature=env.signature)
        assert not Verifier(registry).verify(forged)

    def test_stats_counters(self, registry, alice):
        stats = CryptoStats()
        signer = Signer(alice, stats=stats)
        verifier = Verifier(registry, stats=stats)
        verifier.verify(signer.sign(b"a"))
        verifier.verify(signer.sign(b"b"))
        assert stats.signatures_made == 2
        assert stats.signatures_checked == 2
        assert stats.payloads_signed == 2

    def test_stats_merge(self):
        a = CryptoStats(signatures_made=1, signatures_checked=2,
                        payloads_signed=3)
        b = CryptoStats(signatures_made=10, signatures_checked=20,
                        payloads_signed=30)
        a.merge(b)
        assert (a.signatures_made, a.signatures_checked,
                a.payloads_signed) == (11, 22, 33)

    def test_wire_size_counts_all_parts(self, alice):
        env = Signer(alice).sign(b"12345")
        assert env.wire_size() == 5 + len(env.signature) + 12


class TestBatchSigning:
    def test_batch_shares_one_signature(self, registry, alice):
        stats = CryptoStats()
        signer = Signer(alice, stats=stats)
        envs = signer.sign_batch([b"a", b"b", b"c"])
        assert stats.signatures_made == 1
        assert stats.payloads_signed == 3
        assert len({e.signature for e in envs}) == 1

    def test_each_batch_member_verifies_independently(self, registry, alice):
        envs = Signer(alice).sign_batch([b"a", b"b", b"c"])
        verifier = Verifier(registry)
        for env in envs:
            assert verifier.verify(env)

    def test_batch_member_payload_swap_rejected(self, registry, alice):
        envs = Signer(alice).sign_batch([b"a", b"b"])
        forged = Signed(signer=envs[0].signer, payload=b"x",
                        signature=envs[0].signature,
                        batch_digests=envs[0].batch_digests,
                        batch_index=envs[0].batch_index)
        assert not Verifier(registry).verify(forged)

    def test_batch_index_out_of_range_rejected(self, registry, alice):
        envs = Signer(alice).sign_batch([b"a", b"b"])
        forged = Signed(signer=envs[0].signer, payload=envs[0].payload,
                        signature=envs[0].signature,
                        batch_digests=envs[0].batch_digests,
                        batch_index=5)
        assert not Verifier(registry).verify(forged)

    def test_empty_batch(self, alice):
        assert Signer(alice).sign_batch([]) == []

    def test_singleton_batch_is_plain_signature(self, registry, alice):
        envs = Signer(alice).sign_batch([b"only"])
        assert len(envs) == 1
        assert envs[0].batch_digests == ()
        assert Verifier(registry).verify(envs[0])


class TestBatchSigner:
    def test_flushes_at_max_batch(self, registry, alice):
        stats = CryptoStats()
        out = []
        batcher = BatchSigner(Signer(alice, stats=stats), out.append,
                              max_batch=3)
        for i in range(7):
            batcher.submit(bytes([i]))
        # Two full batches flushed automatically, one payload pending.
        assert stats.signatures_made == 2
        assert batcher.pending_count == 1
        assert batcher.flush() == 1
        assert stats.signatures_made == 3
        assert len(out) == 7
        verifier = Verifier(registry)
        assert all(verifier.verify(e) for e in out)

    def test_flush_on_empty_is_noop(self, alice):
        batcher = BatchSigner(Signer(alice), lambda e: None)
        assert batcher.flush() == 0

    def test_preserves_submission_order(self, alice):
        out = []
        batcher = BatchSigner(Signer(alice), out.append, max_batch=10)
        payloads = [bytes([i]) for i in range(5)]
        for p in payloads:
            batcher.submit(p)
        batcher.flush()
        assert [e.payload for e in out] == payloads

    def test_rejects_bad_max_batch(self, alice):
        with pytest.raises(ValueError):
            BatchSigner(Signer(alice), lambda e: None, max_batch=0)

    def test_batching_reduces_signature_count(self, alice):
        # The Section 7.5 effect: fewer signatures than payloads.
        stats = CryptoStats()
        batcher = BatchSigner(Signer(alice, stats=stats), lambda e: None,
                              max_batch=16)
        for i in range(100):
            batcher.submit(i.to_bytes(2, "big"))
        batcher.flush()
        assert stats.payloads_signed == 100
        assert stats.signatures_made < 10
