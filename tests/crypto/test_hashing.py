"""Unit tests for the truncated-SHA-512 hashing layer."""

import hashlib

import pytest

from repro.crypto import hashing


class TestDigest:
    def test_truncates_sha512_to_20_bytes(self):
        data = b"spider"
        assert hashing.digest(data) == hashlib.sha512(data).digest()[:20]

    def test_digest_size_constant(self):
        assert len(hashing.digest(b"")) == hashing.DIGEST_SIZE == 20

    def test_deterministic(self):
        assert hashing.digest(b"abc") == hashing.digest(b"abc")

    def test_different_inputs_differ(self):
        assert hashing.digest(b"a") != hashing.digest(b"b")

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            hashing.digest("not bytes")

    def test_accepts_bytearray_and_memoryview(self):
        expected = hashing.digest(b"xyz")
        assert hashing.digest(bytearray(b"xyz")) == expected
        assert hashing.digest(memoryview(b"xyz")) == expected


class TestDigestConcat:
    def test_matches_manual_concatenation(self):
        a, b = hashing.digest(b"a"), hashing.digest(b"b")
        assert hashing.digest_concat(a, b) == hashing.digest(a + b)

    def test_empty_is_hash_of_empty(self):
        assert hashing.digest_concat() == hashing.digest(b"")


class TestDigestFields:
    def test_length_prefix_prevents_ambiguity(self):
        # Without framing these two would hash identically.
        assert hashing.digest_fields(b"ab", b"c") != \
            hashing.digest_fields(b"a", b"bc")

    def test_rejects_non_bytes_field(self):
        with pytest.raises(TypeError):
            hashing.digest_fields(b"ok", 42)

    def test_field_count_matters(self):
        assert hashing.digest_fields(b"") != hashing.digest_fields(b"", b"")


class TestDigestIter:
    def test_matches_concat(self):
        parts = [b"one", b"two", b"three"]
        assert hashing.digest_iter(parts) == hashing.digest(b"".join(parts))


class TestBitCommitment:
    def test_commits_to_bit_and_blinding(self):
        x = bytes(20)
        assert hashing.bit_commitment(0, x) == hashing.digest(b"\x00" + x)
        assert hashing.bit_commitment(1, x) == hashing.digest(b"\x01" + x)

    def test_bits_distinguishable_given_blinding(self):
        x = b"\x07" * 20
        assert hashing.bit_commitment(0, x) != hashing.bit_commitment(1, x)

    def test_rejects_invalid_bit(self):
        with pytest.raises(ValueError):
            hashing.bit_commitment(2, bytes(20))

    def test_rejects_wrong_blinding_length(self):
        with pytest.raises(ValueError):
            hashing.bit_commitment(0, bytes(19))
        with pytest.raises(ValueError):
            hashing.bit_commitment(0, bytes(21))


class TestBitCommitments:
    """The batch path must be element-wise identical to bit_commitment."""

    def test_matches_scalar_version(self):
        bits = [0, 1, 1, 0, 1]
        blindings = [bytes([i]) * 20 for i in range(5)]
        assert hashing.bit_commitments(bits, blindings) == \
            [hashing.bit_commitment(b, x) for b, x in zip(bits, blindings)]

    def test_empty(self):
        assert hashing.bit_commitments([], []) == []

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            hashing.bit_commitments([0, 1], [bytes(20)])

    def test_validates_each_element(self):
        with pytest.raises(ValueError):
            hashing.bit_commitments([0, 2], [bytes(20), bytes(20)])
        with pytest.raises(ValueError):
            hashing.bit_commitments([0, 1], [bytes(20), bytes(19)])
