"""Unit and property tests for the from-scratch RSA implementation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import rsa

# Small keys keep the suite fast; one test exercises the paper's 1024 bits.
TEST_BITS = 512


@pytest.fixture(scope="module")
def keypair():
    return rsa.generate_keypair(bits=TEST_BITS, seed=7)


class TestPrimality:
    def test_small_primes(self):
        rng = random.Random(0)
        for p in [2, 3, 5, 7, 97, 101, 7919]:
            assert rsa.is_probable_prime(p, rng)

    def test_small_composites(self):
        rng = random.Random(0)
        for n in [0, 1, 4, 9, 91, 561, 7917]:
            assert not rsa.is_probable_prime(n, rng)

    def test_carmichael_numbers_rejected(self):
        # Fermat pseudoprimes that Miller-Rabin must still catch.
        rng = random.Random(1)
        for n in [561, 1105, 1729, 2465, 2821, 6601, 8911]:
            assert not rsa.is_probable_prime(n, rng)

    def test_generate_prime_has_exact_bits(self):
        rng = random.Random(2)
        for bits in [16, 64, 128]:
            p = rsa.generate_prime(bits, rng)
            assert p.bit_length() == bits
            assert rsa.is_probable_prime(p, rng)

    def test_generate_prime_rejects_tiny(self):
        with pytest.raises(ValueError):
            rsa.generate_prime(4, random.Random(0))


class TestKeyGeneration:
    def test_deterministic_with_seed(self):
        k1 = rsa.generate_keypair(bits=TEST_BITS, seed=42)
        k2 = rsa.generate_keypair(bits=TEST_BITS, seed=42)
        assert k1.n == k2.n and k1.d == k2.d

    def test_different_seeds_differ(self):
        k1 = rsa.generate_keypair(bits=TEST_BITS, seed=1)
        k2 = rsa.generate_keypair(bits=TEST_BITS, seed=2)
        assert k1.n != k2.n

    def test_modulus_bit_length(self, keypair):
        assert keypair.n.bit_length() == TEST_BITS

    def test_crt_components_consistent(self, keypair):
        k = keypair
        assert k.p * k.q == k.n
        assert (k.e * k.d) % ((k.p - 1) * (k.q - 1)) == 1
        assert k.d_p == k.d % (k.p - 1)
        assert k.d_q == k.d % (k.q - 1)
        assert (k.q_inv * k.q) % k.p == 1

    def test_rejects_undersized_modulus(self):
        with pytest.raises(ValueError):
            rsa.generate_keypair(bits=128, seed=0)

    def test_paper_scale_1024_bits(self):
        key = rsa.generate_keypair(bits=1024, seed=99)
        assert key.n.bit_length() == 1024
        msg = b"RSA-1024 as in Section 7.1"
        assert rsa.verify(key.public_key, msg, rsa.sign(key, msg))


class TestSignVerify:
    def test_roundtrip(self, keypair):
        msg = b"announce 8.8.8.0/24"
        sig = rsa.sign(keypair, msg)
        assert rsa.verify(keypair.public_key, msg, sig)

    def test_signature_length_equals_modulus(self, keypair):
        assert len(rsa.sign(keypair, b"m")) == keypair.size_bytes

    def test_wrong_message_rejected(self, keypair):
        sig = rsa.sign(keypair, b"m1")
        assert not rsa.verify(keypair.public_key, b"m2", sig)

    def test_tampered_signature_rejected(self, keypair):
        sig = bytearray(rsa.sign(keypair, b"m"))
        sig[0] ^= 0x01
        assert not rsa.verify(keypair.public_key, b"m", bytes(sig))

    def test_wrong_key_rejected(self, keypair):
        other = rsa.generate_keypair(bits=TEST_BITS, seed=8)
        sig = rsa.sign(keypair, b"m")
        assert not rsa.verify(other.public_key, b"m", sig)

    def test_wrong_length_signature_rejected(self, keypair):
        assert not rsa.verify(keypair.public_key, b"m", b"short")

    def test_signature_ge_modulus_rejected(self, keypair):
        too_big = (keypair.n).to_bytes(keypair.size_bytes, "big")
        assert not rsa.verify(keypair.public_key, b"m", too_big)

    def test_signing_is_deterministic(self, keypair):
        assert rsa.sign(keypair, b"m") == rsa.sign(keypair, b"m")

    @settings(max_examples=25, deadline=None)
    @given(st.binary(max_size=200))
    def test_roundtrip_property(self, msg):
        key = rsa.generate_keypair(bits=TEST_BITS, seed=7)
        assert rsa.verify(key.public_key, msg, rsa.sign(key, msg))

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=64))
    def test_cross_message_rejection_property(self, m1, m2):
        key = rsa.generate_keypair(bits=TEST_BITS, seed=7)
        sig = rsa.sign(key, m1)
        assert rsa.verify(key.public_key, m2, sig) == (m1 == m2)


class TestPublicKey:
    def test_fingerprint_stable(self, keypair):
        pk = keypair.public_key
        assert pk.fingerprint() == pk.fingerprint()
        assert len(pk.fingerprint()) == 20

    def test_fingerprints_distinguish_keys(self, keypair):
        other = rsa.generate_keypair(bits=TEST_BITS, seed=11)
        assert keypair.public_key.fingerprint() != \
            other.public_key.fingerprint()
