"""Direct unit tests for the fault-injection primitives.

The campaign engine exercises these end to end; here each injector is
pinned in isolation so a regression points at the primitive, not at a
whole adversarial scenario.
"""

import pytest

from repro.bgp.prefix import Prefix
from repro.core.verdict import FaultKind
from repro.faults.injector import AckWithholdingRecorder, \
    EquivocatingRecorder, FilteringRecorder, install_export_filter, \
    install_export_leak, install_export_mutator, install_import_filter, \
    shorten_as_path, tamper_bit_proof, tamper_log_entry, \
    tamper_proof_set
from repro.faults.scenarios import FEED_ASN, FILLER_PREFIX, GOOD_PREFIX
from repro.netsim.network import Network, TraceEvent
from repro.netsim.topology import FOCUS_AS, INJECTION_AS, \
    figure5_topology
from repro.spider.config import SpiderConfig
from repro.spider.log import TamperError
from repro.spider.node import SpiderDeployment

OTHER_PREFIX = Prefix.parse("198.51.100.0/24")

_CONFIG = SpiderConfig(commit_interval=60.0)


def build(recorder_factories=None):
    network = Network(figure5_topology())
    deployment = SpiderDeployment(network, config=_CONFIG,
                                  recorder_factories=recorder_factories)
    network.attach_feed(INJECTION_AS, feed_asn=FEED_ASN)
    return network, deployment


def good_route_workload(network):
    network.originate(9, GOOD_PREFIX)
    network.settle()


# ----------------------------------------------------------------------
# FilteringRecorder


def _filtering_factory(**overrides):
    def factory(*args, **kwargs):
        return FilteringRecorder(*args, drop_from=7, **overrides,
                                 **kwargs)
    return {FOCUS_AS: factory}


def test_filtering_recorder_drops_but_still_acks():
    network, deployment = build(_filtering_factory())
    good_route_workload(network)
    recorder = deployment.node(FOCUS_AS).recorder
    assert recorder.dropped, "the filtered announce was never seen"
    assert all(m.sender == 7 for m in recorder.dropped)
    # The stealthy part: AS 7 got its ACKs, so no T_max sweep fires.
    assert deployment.node(7).recorder.overdue_acks() == []
    assert deployment.sweep_overdue_acks() == []
    # And the committed view really is missing the route.
    commit = deployment.commit_now(FOCUS_AS)
    view = deployment.node(FOCUS_AS).view_at(commit.commit_time)
    assert GOOD_PREFIX not in view.imports.get(7, {})


def test_filtering_recorder_prefix_scoping():
    network, deployment = build(
        _filtering_factory(drop_prefixes={OTHER_PREFIX}))
    good_route_workload(network)
    # Only OTHER_PREFIX (never announced) is in scope: nothing dropped.
    assert deployment.node(FOCUS_AS).recorder.dropped == []


def test_filtering_recorder_respects_active_from():
    network, deployment = build(
        _filtering_factory(active_from=1e9))
    good_route_workload(network)
    assert deployment.node(FOCUS_AS).recorder.dropped == []


# ----------------------------------------------------------------------
# AckWithholdingRecorder


def test_ack_withholding_trips_the_tmax_sweep():
    def factory(*args, **kwargs):
        return AckWithholdingRecorder(*args, withhold_from={7},
                                      **kwargs)

    network, deployment = build({FOCUS_AS: factory})
    good_route_workload(network)
    recorder = deployment.node(FOCUS_AS).recorder
    assert recorder.withheld, "nothing was withheld"
    network.run_until(network.sim.now + _CONFIG.ack_timeout + 2.0)
    records = deployment.sweep_overdue_acks()
    assert [(r.detector, r.accused, r.kind) for r in records] == \
        [(7, FOCUS_AS, FaultKind.MISSING_MESSAGE)]


# ----------------------------------------------------------------------
# EquivocatingRecorder


def test_equivocating_recorder_detected_by_lied_to_neighbor():
    def factory(*args, **kwargs):
        return EquivocatingRecorder(*args, lie_to={7}, **kwargs)

    network, deployment = build({FOCUS_AS: factory})
    good_route_workload(network)
    deployment.commit_now(FOCUS_AS)
    network.settle()
    lied_to = deployment.node(7).detections
    assert any(r.kind is FaultKind.EQUIVOCATION and
               r.accused == FOCUS_AS for r in lied_to)
    # A neighbor that saw only one root has nothing to report.
    assert deployment.node(8).detections == []


# ----------------------------------------------------------------------
# Speaker-side injectors


def test_install_import_filter_really_drops_the_route():
    network, deployment = build()
    install_import_filter(
        network.speaker(FOCUS_AS),
        lambda route, neighbor: route.prefix == GOOD_PREFIX)
    good_route_workload(network)
    assert network.speaker(FOCUS_AS).best(GOOD_PREFIX) is None
    # Nothing to select means nothing to pass on to AS 8.
    assert network.speaker(8).received_from(FOCUS_AS,
                                            GOOD_PREFIX) is None


def test_install_export_filter_suppresses_one_neighbor():
    network, deployment = build()
    install_export_filter(
        network.speaker(FOCUS_AS),
        lambda route, neighbor: route.prefix == GOOD_PREFIX and
        neighbor == 8)
    good_route_workload(network)
    speaker = network.speaker(FOCUS_AS)
    assert speaker.best(GOOD_PREFIX) is not None
    assert speaker.advertised_to(8, GOOD_PREFIX) is None
    # Other neighbors still get the customer route (Gao-Rexford).
    assert speaker.advertised_to(4, GOOD_PREFIX) is not None


def test_install_export_leak_sends_provider_routes_upstream():
    def filler(network):
        network.schedule_trace(FEED_ASN, [
            TraceEvent(1.0, FILLER_PREFIX, (FEED_ASN, 4000, 4001)),
        ])
        network.settle()

    # Honest valley-free baseline: the provider-learned FILLER route
    # never goes back up to a provider.
    network, _deployment = build()
    filler(network)
    assert network.speaker(FOCUS_AS).best(FILLER_PREFIX) is not None
    assert network.speaker(FOCUS_AS).advertised_to(
        6, FILLER_PREFIX) is None

    network, _deployment = build()
    install_export_leak(network.speaker(FOCUS_AS))
    filler(network)
    assert network.speaker(FOCUS_AS).advertised_to(
        6, FILLER_PREFIX) is not None


def test_shorten_as_path_collapses_to_exporter_and_origin():
    network, deployment = build()
    install_export_mutator(
        network.speaker(FOCUS_AS),
        lambda route, neighbor: shorten_as_path(route)
        if route.prefix == GOOD_PREFIX else route)
    good_route_workload(network)
    # The true path 5-7-9 arrives at the provider as 5-9.
    received = network.speaker(4).received_from(FOCUS_AS, GOOD_PREFIX)
    assert received is not None
    assert received.as_path == (FOCUS_AS, 9)


def test_shorten_as_path_is_identity_on_short_paths():
    network, _deployment = build()
    good_route_workload(network)
    short = network.speaker(7).received_from(9, GOOD_PREFIX)
    assert short is not None and len(short.as_path) <= 2
    assert shorten_as_path(short) is short


# ----------------------------------------------------------------------
# Proof and log tampering


@pytest.fixture(scope="module")
def verified_world():
    network, deployment = build()
    good_route_workload(network)
    deployment.commit_now(FOCUS_AS)
    outcomes = deployment.verify(FOCUS_AS)
    assert deployment.all_clean(outcomes)
    return network, deployment, outcomes


def _an_outcome_with_producer_proofs(outcomes):
    for outcome in outcomes:
        if outcome.proofs.producer_proofs:
            return outcome
    raise AssertionError("no outcome carried producer proofs")


def test_tamper_bit_proof_flips_only_the_bit(verified_world):
    _network, deployment, outcomes = verified_world
    outcome = _an_outcome_with_producer_proofs(outcomes)
    prefix, message = next(iter(
        sorted(outcome.proofs.producer_proofs.items(), key=str)))
    signer = deployment.node(FOCUS_AS).recorder.signer
    tampered = tamper_bit_proof(signer, message)
    assert tampered.proof.bit == 1 - message.proof.bit
    assert tampered.proof.prefix == prefix
    assert tampered.proof.steps == message.proof.steps
    assert tampered.proof.blinding == message.proof.blinding
    # The lie is freshly signed: only Merkle arithmetic can expose it.
    assert tampered.valid(deployment.node(FOCUS_AS).recorder.registry)


def test_tamper_proof_set_scopes_to_the_prefix(verified_world):
    _network, deployment, outcomes = verified_world
    outcome = _an_outcome_with_producer_proofs(outcomes)
    prefix = next(iter(
        sorted(outcome.proofs.producer_proofs, key=str)))
    signer = deployment.node(FOCUS_AS).recorder.signer
    doctored = tamper_proof_set(signer, outcome.proofs, prefix)
    for p, message in doctored.producer_proofs.items():
        original = outcome.proofs.producer_proofs[p]
        if p == prefix:
            assert message.proof.bit != original.proof.bit
        else:
            assert message is original
    for p, messages in doctored.consumer_proofs.items():
        originals = outcome.proofs.consumer_proofs[p]
        if p != prefix:
            assert messages == originals


def test_tamper_log_entry_breaks_the_hash_chain():
    network, deployment = build()
    good_route_workload(network)
    deployment.commit_now(FOCUS_AS)
    log = deployment.node(FOCUS_AS).recorder.log
    log.verify_chain()  # sanity: intact before tampering
    tampered = tamper_log_entry(log, -1)
    assert tampered is list(log)[-1]
    with pytest.raises(TamperError):
        log.verify_chain()
