"""Golden corpus replay: named campaigns with pinned verdicts.

Each file under ``corpus/`` freezes one ``(seed, index)`` campaign —
attack class, sampled spec, schedule digest, and the full differential
verdict both systems produced.  Replaying it through the live engine
must reproduce the entry *byte for byte*: the engine promises that a
recorded seed is sufficient to reconstruct a run, and this suite is
what holds it to that.

A drifted golden is a behavior change in the engine, the adversaries,
the detectors, or the samplers; regenerate deliberately with::

    PYTHONPATH=src python -c "
    from repro.faults.campaign import run_campaign; ..."

and account for the diff in review.
"""

import json
import pathlib

import pytest

from repro.core.verdict import FaultKind
from repro.faults.adversaries import ATTACK_CLASSES
from repro.faults.campaign import run_campaign

CORPUS_DIR = pathlib.Path(__file__).parent / "corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def _load(path):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def test_corpus_is_populated():
    assert len(CORPUS_FILES) >= 10


def test_corpus_covers_every_attack_class():
    covered = {_load(path)["entry"]["attack"] for path in CORPUS_FILES}
    assert covered == {cls().name for cls in ATTACK_CLASSES}


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_corpus_entries_are_well_formed(path):
    doc = _load(path)
    entry = doc["entry"]
    assert doc["name"]
    assert entry["ok"] and entry["problems"] == []
    assert entry["schedule_digest"]
    for record in entry["spider_detections"] + \
            entry["netreview_detections"]:
        FaultKind(record["kind"])  # every pinned kind must still exist
        assert record["accused"] == entry["spec"]["position"]


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES])
def test_corpus_replays_identically(path):
    golden = _load(path)["entry"]
    replayed = run_campaign(golden["seed"], golden["index"])
    assert replayed == golden
