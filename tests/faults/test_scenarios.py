"""The §7.4 functionality checks as tests: every fault is detected by
the right party, and the clean runs stay clean."""

import pytest

from repro.core.verdict import FaultKind
from repro.faults.scenarios import clean_baseline, \
    equivocating_commitments, overaggressive_filter, tampered_bit_proof, \
    wrongly_exporting, wrongly_exporting_fixed


@pytest.fixture(scope="module")
def results():
    return {
        "clean": clean_baseline(),
        "filter": overaggressive_filter(),
        "export": wrongly_exporting(),
        "export-fixed": wrongly_exporting_fixed(),
        "tamper": tampered_bit_proof(),
        "equivocate": equivocating_commitments(),
    }


class TestCleanBaseline:
    def test_no_detection(self, results):
        assert not results["clean"].detected

    def test_all_neighbors_checked(self, results):
        assert len(results["clean"].outcomes) == 5


class TestOveraggressiveFilter:
    """Fault 1: 'the upstream AS raised an alarm because it did not
    receive a bit proof for the route it had supplied'."""

    def test_detected(self, results):
        assert results["filter"].detected

    def test_upstream_as_detects(self, results):
        assert 7 in results["filter"].detectors

    def test_detection_is_about_the_missing_input(self, results):
        kinds = results["filter"].detectors[7]
        assert kinds & {FaultKind.MISSING_PROOF, FaultKind.FALSE_BIT}

    def test_downstreams_do_not_false_alarm(self, results):
        # Consumers see a consistent (if degraded) world; the producer is
        # the designated detector for this fault.
        for neighbor, kinds in results["filter"].detectors.items():
            if neighbor != 7:
                assert FaultKind.BROKEN_PROMISE not in kinds


class TestWronglyExporting:
    """Fault 2: 'the downstream AS noticed that it had a bit proof for
    the null route, which was better than the route it had actually
    received'."""

    def test_detected(self, results):
        assert results["export"].detected

    def test_downstream_ases_detect(self, results):
        detectors = set(results["export"].detectors)
        assert detectors & {7, 8}

    def test_kind_is_broken_promise(self, results):
        for kinds in results["export"].detectors.values():
            assert FaultKind.BROKEN_PROMISE in kinds

    def test_fixed_policy_is_clean(self, results):
        assert not results["export-fixed"].detected


class TestTamperedBitProof:
    """Fault 3: 'the downstream AS detected that the proof did not match
    the hash value from the commitment'."""

    def test_detected(self, results):
        assert results["tamper"].detected

    def test_tampered_recipient_sees_invalid_proof(self, results):
        assert FaultKind.INVALID_PROOF in results["tamper"].detectors[8]

    def test_untampered_recipient_sees_real_violation(self, results):
        assert FaultKind.BROKEN_PROMISE in results["tamper"].detectors[7]


class TestEquivocation:
    def test_detected(self, results):
        assert results["equivocate"].detected

    def test_multiple_neighbors_can_prove_it(self, results):
        detectors = [n for n, kinds in
                     results["equivocate"].detectors.items()
                     if FaultKind.EQUIVOCATION in kinds]
        assert len(detectors) >= 2


class TestAllFaultsDetectedExactlyLikeThePaper:
    def test_summary(self, results):
        """The §7.4 headline: 'in each case the fault was detected by
        one of the ASes'."""
        for name in ("filter", "export", "tamper"):
            assert results[name].detected, f"{name} went undetected"
        for name in ("clean", "export-fixed"):
            assert not results[name].detected, f"{name} false-positived"
