"""The campaign engine itself: determinism, oracle wiring, CLI.

Tier-1 keeps to a handful of cheap campaigns; the seed-roaming sweep is
behind the ``campaign`` marker and runs in its own CI job.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.faults.adversaries import ATTACK_CLASSES
from repro.faults.campaign import main, run_campaign, run_suite
from tests.strategies import campaign_coordinates


def test_run_campaign_is_deterministic():
    first = run_campaign(0, 0)
    second = run_campaign(0, 0)
    assert first == second
    assert json.dumps(first, sort_keys=True) == \
        json.dumps(second, sort_keys=True)


def test_different_indices_give_different_schedules():
    digests = {run_campaign(0, index)["schedule_digest"]
               for index in (0, len(ATTACK_CLASSES))}
    # Same attack class (round-robin wraps), different sampled spec.
    assert len(digests) == 2


def test_run_suite_aggregates():
    report = run_suite(seed=3, campaigns=2)
    assert report["seed"] == 3
    assert report["campaigns"] == 2
    assert len(report["results"]) == 2
    assert report["attack_classes"] == [cls().name
                                        for cls in ATTACK_CLASSES]
    assert report["ok"]
    assert report["total_problems"] == 0


def test_cli_writes_report_and_exits_zero(tmp_path, capsys):
    out = tmp_path / "report.json"
    code = main(["--seed", "1", "--campaigns", "1",
                 "--out", str(out)])
    assert code == 0
    report = json.loads(out.read_text())
    assert report["ok"] and report["seed"] == 1
    assert json.loads(capsys.readouterr().out) == report


@pytest.mark.campaign
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(campaign_coordinates())
def test_any_coordinate_passes_the_oracle(coordinate):
    """The property behind the whole engine: for ANY (seed, index) the
    sampled attack is detected exactly as expected on both systems and
    the control world stays silent."""
    seed, index = coordinate
    entry = run_campaign(seed, index)
    assert entry["ok"], entry["problems"]


@pytest.mark.campaign
def test_full_round_robin_sweep():
    report = run_suite(seed=11, campaigns=2 * len(ATTACK_CLASSES))
    assert report["ok"], [r["problems"] for r in report["results"]
                          if not r["ok"]]
