"""Tests for SPIDeR wire messages: signing, validation, tampering."""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.crypto.keys import KeyRegistry, make_identity
from repro.crypto.signatures import Signer
from repro.mtt.labeling import label_tree
from repro.mtt.proofs import generate_proof
from repro.mtt.tree import Mtt
from repro.crypto.rc4 import Rc4Csprng
from repro.spider.wire import SpiderAck, SpiderAnnounce, SpiderCommitment, \
    SpiderBitProof, SpiderWithdraw, sign_route

P = Prefix.parse("203.0.113.0/24")


@pytest.fixture(scope="module")
def registry():
    return KeyRegistry()


@pytest.fixture(scope="module")
def alice(registry):
    return make_identity(11, registry=registry, bits=512, seed=501)


@pytest.fixture(scope="module")
def bob(registry):
    return make_identity(12, registry=registry, bits=512, seed=502)


def route(path=(11, 9)):
    return Route(prefix=P, as_path=tuple(path), neighbor=path[0])


class TestSpiderAnnounce:
    def test_roundtrip(self, registry, alice):
        msg = SpiderAnnounce.make(Signer(alice), receiver=12,
                                  timestamp=10.0, route=route(),
                                  underlying=None)
        assert msg.valid(registry)
        assert msg.prefix == P

    def test_carries_underlying_signature(self, registry, alice, bob):
        underlying = sign_route(Signer(bob), route(path=(12, 9)))
        msg = SpiderAnnounce.make(Signer(alice), receiver=12,
                                  timestamp=10.0,
                                  route=route(path=(11, 12, 9)),
                                  underlying=underlying)
        assert msg.valid(registry)

    def test_tampered_route_rejected(self, registry, alice):
        import dataclasses
        msg = SpiderAnnounce.make(Signer(alice), receiver=12,
                                  timestamp=10.0, route=route(),
                                  underlying=None)
        forged = dataclasses.replace(msg, route=route(path=(11, 8)))
        assert not forged.valid(registry)

    def test_tampered_timestamp_rejected(self, registry, alice):
        import dataclasses
        msg = SpiderAnnounce.make(Signer(alice), receiver=12,
                                  timestamp=10.0, route=route(),
                                  underlying=None)
        forged = dataclasses.replace(msg, timestamp=99.0)
        assert not forged.valid(registry)

    def test_reannounce_distinct_from_announce(self, registry, alice):
        """§6.6: RE-ANNOUNCEs cannot substitute for originals."""
        import dataclasses
        original = SpiderAnnounce.make(Signer(alice), receiver=12,
                                       timestamp=10.0, route=route(),
                                       underlying=None)
        relabeled = dataclasses.replace(original, reannounce=True)
        assert not relabeled.valid(registry)
        genuine_re = SpiderAnnounce.make(Signer(alice), receiver=12,
                                         timestamp=10.0, route=route(),
                                         underlying=None, reannounce=True)
        assert genuine_re.valid(registry)

    def test_message_hash_changes_with_content(self, alice):
        a = SpiderAnnounce.make(Signer(alice), 12, 10.0, route(), None)
        b = SpiderAnnounce.make(Signer(alice), 12, 11.0, route(), None)
        assert a.message_hash() != b.message_hash()

    def test_negative_timestamp_rejected(self, alice):
        """Timestamps double as nonces; a negative one has no place on
        the millisecond grid and must fail fast at signing time."""
        with pytest.raises(ValueError, match="negative timestamp"):
            SpiderAnnounce.make(Signer(alice), receiver=12,
                                timestamp=-0.001, route=route(),
                                underlying=None)

    def test_wire_size_counts_signatures(self, alice, bob):
        plain = SpiderAnnounce.make(Signer(alice), 12, 10.0, route(),
                                    None)
        underlying = sign_route(Signer(bob), route(path=(12, 9)))
        nested = SpiderAnnounce.make(Signer(alice), 12, 10.0,
                                     route(path=(11, 12, 9)), underlying)
        assert nested.wire_size() > plain.wire_size()


class TestSpiderWithdrawAndAck:
    def test_withdraw_roundtrip(self, registry, alice):
        msg = SpiderWithdraw.make(Signer(alice), receiver=12,
                                  timestamp=20.0, prefix=P)
        assert msg.valid(registry)

    def test_withdraw_tamper_rejected(self, registry, alice):
        import dataclasses
        msg = SpiderWithdraw.make(Signer(alice), 12, 20.0, P)
        forged = dataclasses.replace(
            msg, prefix=Prefix.parse("10.0.0.0/8"))
        assert not forged.valid(registry)

    def test_ack_roundtrip(self, registry, alice, bob):
        announce = SpiderAnnounce.make(Signer(alice), 12, 10.0, route(),
                                       None)
        ack = SpiderAck.make(Signer(bob), sender=11, timestamp=10.1,
                             message_hash=announce.message_hash())
        assert ack.valid(registry)
        assert ack.message_hash == announce.message_hash()

    def test_ack_wrong_hash_detectable(self, registry, alice, bob):
        ack = SpiderAck.make(Signer(bob), sender=11, timestamp=10.1,
                             message_hash=b"x" * 20)
        assert ack.valid(registry)  # validly signed...
        announce = SpiderAnnounce.make(Signer(alice), 12, 10.0, route(),
                                       None)
        assert ack.message_hash != announce.message_hash()  # ...but
        # does not acknowledge this message.


class TestCommitmentAndProofMessages:
    def test_commitment_roundtrip(self, registry, alice):
        msg = SpiderCommitment.make(Signer(alice), commit_time=60.0,
                                    root=b"r" * 20)
        assert msg.valid(registry)

    def test_commitment_tamper_rejected(self, registry, alice):
        import dataclasses
        msg = SpiderCommitment.make(Signer(alice), 60.0, b"r" * 20)
        forged = dataclasses.replace(msg, root=b"s" * 20)
        assert not forged.valid(registry)

    def test_bit_proof_roundtrip(self, registry, alice):
        tree = Mtt.build({P: [1, 0]})
        label_tree(tree, Rc4Csprng(b"s"))
        proof = generate_proof(tree, P, 0)
        msg = SpiderBitProof.make(Signer(alice), recipient=12,
                                  commit_time=60.0, proof=proof)
        assert msg.valid(registry)

    def test_bit_proof_recipient_bound(self, registry, alice):
        import dataclasses
        tree = Mtt.build({P: [1, 0]})
        label_tree(tree, Rc4Csprng(b"s"))
        proof = generate_proof(tree, P, 0)
        msg = SpiderBitProof.make(Signer(alice), 12, 60.0, proof)
        forged = dataclasses.replace(msg, recipient=13)
        assert not forged.valid(registry)
