"""Tests for the loose-synchronization input windows (§6.4)."""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import NULL_ROUTE, Route
from repro.core.classes import ClassScheme
from repro.core.promise import total_order_promise
from repro.spider.windows import RouteChange, admissible_inputs, \
    choose_input, stable_in_window, value_at

P = Prefix.parse("203.0.113.0/24")


def route(length):
    return Route(prefix=P, as_path=tuple(range(100, 100 + length)),
                 neighbor=100)


def scheme():
    def classify(r):
        if r is NULL_ROUTE:
            return 0
        return max(0, 4 - r.path_length)  # shorter = higher, up to 3
    return ClassScheme(labels=("c0", "c1", "c2", "c3"),
                       classify_fn=classify)


R1, R2, R3 = route(3), route(2), route(1)

# The §6.4 example: r1 at t1, withdrawn at t2, replaced by r2 at t3.
HISTORY = [RouteChange(10.0, R1), RouteChange(20.0, R2)]
FLAPPY = [RouteChange(10.0, R1), RouteChange(15.0, NULL_ROUTE),
          RouteChange(20.0, R2)]


class TestValueAt:
    def test_null_before_first_change(self):
        assert value_at(HISTORY, 5.0) is NULL_ROUTE

    def test_tracks_changes(self):
        assert value_at(HISTORY, 12.0) == R1
        assert value_at(HISTORY, 25.0) == R2

    def test_change_effective_at_its_time(self):
        assert value_at(HISTORY, 10.0) == R1


class TestAdmissibleInputs:
    def test_stable_window_single_value(self):
        assert admissible_inputs(HISTORY, commit_time=14.0, delta=2.0) \
            == [R1]

    def test_paper_example_three_choices(self):
        """Alice may choose r1, ⊥, or r2 when the flap fits the window."""
        values = admissible_inputs(FLAPPY, commit_time=21.0, delta=10.0)
        assert values == [R1, NULL_ROUTE, R2]

    def test_window_boundary_inclusive(self):
        values = admissible_inputs(HISTORY, commit_time=20.0, delta=5.0)
        assert values == [R1, R2]

    def test_window_start_before_first_announcement(self):
        values = admissible_inputs(FLAPPY, commit_time=21.0, delta=12.0)
        assert values == [NULL_ROUTE, R1, NULL_ROUTE, R2]

    def test_duplicate_reannouncements_collapsed(self):
        history = [RouteChange(10.0, R1), RouteChange(12.0, R1)]
        assert admissible_inputs(history, 15.0, 10.0) == [NULL_ROUTE, R1]

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            admissible_inputs(HISTORY, 10.0, -1.0)


class TestStability:
    def test_stable_when_no_changes_in_window(self):
        assert stable_in_window(HISTORY, commit_time=15.0, delta=2.0)

    def test_unstable_when_change_in_window(self):
        assert not stable_in_window(HISTORY, commit_time=20.5, delta=2.0)


class TestChooseInput:
    def test_stable_route_no_freedom(self):
        """'When the routes are stable, the elector has no freedom at
        all' — the only admissible input is the current value."""
        promise = total_order_promise(scheme())
        chosen = choose_input(HISTORY, commit_time=15.0, delta=1.0,
                              output=R1, promises=[promise])
        assert chosen == R1

    def test_picks_first_non_preferred_input(self):
        promise = total_order_promise(scheme())
        # Output is R2 (length 2, class 2).  R1 (length 3, class 1) would
        # not have been preferred, so it is an acceptable explanation.
        chosen = choose_input(FLAPPY, commit_time=21.0, delta=10.0,
                              output=R2, promises=[promise])
        assert chosen == R1

    def test_none_when_every_input_beats_output(self):
        promise = total_order_promise(scheme())
        # Output of class 1 while the window only ever held R3 (class 3).
        history = [RouteChange(10.0, R3)]
        chosen = choose_input(history, commit_time=15.0, delta=1.0,
                              output=R1, promises=[promise])
        assert chosen is None

    def test_output_null_with_flap_explained_by_null_gap(self):
        promise = total_order_promise(scheme())
        # The withdrawal gap inside the window explains a ⊥ output...
        chosen = choose_input(FLAPPY, commit_time=21.0, delta=10.0,
                              output=NULL_ROUTE, promises=[promise])
        # ...but R1 held at window start is preferred over ⊥, so the
        # selection must skip it and use the ⊥ gap.
        assert chosen is NULL_ROUTE

    def test_no_promises_accepts_anything(self):
        chosen = choose_input(FLAPPY, commit_time=21.0, delta=10.0,
                              output=NULL_ROUTE, promises=[])
        assert chosen == R1  # first admissible, nothing forbids it
