"""Integration tests: recorder, proof generator, and checker end to end
on the Figure 5 deployment."""

import pytest

from repro.netsim.topology import FOCUS_AS
from repro.spider.log import EntryKind

from .conftest import FEED, ORIGINATED, P, Q


class TestRecorderMirroring:
    def test_spider_messages_flow(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        # AS 5 received announcements from its neighbors.
        assert node.recorder.state.imports
        # And sent some of its own (logged).
        assert node.recorder.log.of_kind(EntryKind.SENT_ANNOUNCE)

    def test_acks_flow_back(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        assert node.recorder.log.of_kind(EntryKind.RECV_ACK)
        assert not node.recorder.overdue_acks()

    def test_mirror_matches_bgp(self, deployment):
        network, dep = deployment
        for asn, node in dep.nodes.items():
            assert node.recorder.mirror_consistent(network.speaker(asn))

    def test_no_alarms_in_honest_run(self, deployment):
        network, dep = deployment
        for node in dep.nodes.values():
            assert node.recorder.alarms == []

    def test_log_chain_intact(self, deployment):
        network, dep = deployment
        for node in dep.nodes.values():
            node.recorder.log.verify_chain()

    def test_imports_match_neighbor_exports(self, deployment):
        network, dep = deployment
        node5 = dep.node(FOCUS_AS)
        for neighbor, table in node5.recorder.state.imports.items():
            peer_state = dep.node(neighbor).recorder.state
            for prefix, route in table.items():
                sent = peer_state.exports.get(FOCUS_AS, {}).get(prefix)
                assert sent is not None
                assert sent.to_bytes() == route.to_bytes()


class TestCommitments:
    def test_commitment_broadcast_to_neighbors(self, deployment):
        network, dep = deployment
        record = dep.commit_now(FOCUS_AS)
        network.settle()
        for neighbor in network.topology.neighbors(FOCUS_AS):
            commitment = dep.node(neighbor).commitment_from(
                FOCUS_AS, record.commit_time)
            assert commitment is not None
            assert commitment.root == record.root

    def test_commitment_seed_logged_compactly(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        dep.commit_now(FOCUS_AS)
        entries = node.recorder.log.of_kind(EntryKind.COMMITMENT)
        assert entries
        # §7.7: each commitment adds only the seed (plus tiny framing).
        assert all(e.size_bytes <= 48 for e in entries)

    def test_successive_commitments_differ(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        network.sim.clock.advance_to(network.sim.now + 1.0)
        r1 = dep.commit_now(FOCUS_AS)
        network.sim.clock.advance_to(network.sim.now + 1.0)
        r2 = dep.commit_now(FOCUS_AS)
        # Same routing state, fresh blinding → different roots (§5.3).
        assert r1.root != r2.root

    def test_periodic_commitments_fire(self):
        from repro.netsim.network import Network
        from repro.netsim.topology import figure5_topology
        from repro.spider.config import SpiderConfig
        from repro.spider.node import SpiderDeployment, evaluation_scheme
        network = Network(figure5_topology())
        dep = SpiderDeployment(network, scheme=evaluation_scheme(5),
                               config=SpiderConfig(commit_interval=60.0))
        network.originate(9, P)
        network.settle()
        dep.start(until=200.0)
        network.run_until(205.0)
        assert len(dep.node(FOCUS_AS).recorder.commitments) == 3


class TestReconstruction:
    def test_replay_reproduces_root(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        record = dep.commit_now(FOCUS_AS)
        reconstruction = node.proofgen.reconstruct(record.commit_time)
        assert reconstruction.root == record.root

    def test_reconstruct_unknown_time_rejected(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        with pytest.raises(ValueError):
            node.proofgen.reconstruct(123456.789)

    def test_old_commitments_still_reconstructible(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        history = [r.commit_time for r in node.recorder.commitments]
        for commit_time in history[:3]:
            reconstruction = node.proofgen.reconstruct(commit_time)
            assert reconstruction.root == next(
                r.root for r in node.recorder.commitments
                if r.commit_time == commit_time)

    def test_reconstruction_cache_hits_on_repeat(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        record = dep.commit_now(FOCUS_AS)
        gen = node.proofgen
        first = gen.reconstruct(record.commit_time)
        hits_before = gen.cache_hits
        second = gen.reconstruct(record.commit_time)
        assert second is first  # same object, no rebuild
        assert gen.cache_hits == hits_before + 1
        assert 0.0 < gen.cache_hit_rate <= 1.0

    def test_reconstruction_cache_bypass(self, deployment):
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        record = dep.commit_now(FOCUS_AS)
        gen = node.proofgen
        cached = gen.reconstruct(record.commit_time)
        fresh = gen.reconstruct(record.commit_time, use_cache=False)
        assert fresh is not cached
        assert fresh.root == cached.root

    def test_reconstruction_cache_evicts_lru(self, deployment):
        from dataclasses import replace

        network, dep = deployment
        node = dep.node(FOCUS_AS)
        gen = node.proofgen
        original = node.recorder.config
        node.recorder.config = replace(original,
                                       reconstruction_cache_size=2)
        try:
            gen._cache.clear()
            # Three commitments at distinct times.
            history = []
            for _ in range(3):
                network.sim.clock.advance_to(network.sim.now + 1.0)
                history.append(dep.commit_now(FOCUS_AS).commit_time)
            assert len(set(history)) == 3
            for commit_time in history:
                gen.reconstruct(commit_time)
            assert len(gen._cache) == 2
            # The oldest reconstruction was evicted; the newest remain.
            assert history[-1] in gen._cache
            assert history[-2] in gen._cache
            assert history[0] not in gen._cache
        finally:
            node.recorder.config = original
            gen._cache.clear()


class TestVerification:
    def test_honest_verification_clean_everywhere(self, deployment):
        network, dep = deployment
        for elector in network.topology.ases:
            dep.commit_now(elector)
            outcomes = dep.verify(elector)
            for outcome in outcomes:
                assert outcome.report.ok, \
                    (f"AS{outcome.neighbor} vs AS{elector}: "
                     f"{[str(v) for v in outcome.report.verdicts]}")

    def test_producer_proofs_cover_all_inputs(self, deployment):
        network, dep = deployment
        dep.commit_now(FOCUS_AS)
        outcomes = dep.verify(FOCUS_AS)
        node = dep.node(FOCUS_AS)
        for outcome in outcomes:
            advertised = node.recorder.state.imports.get(
                outcome.neighbor, {})
            assert set(outcome.proofs.producer_proofs) == set(advertised)

    def test_single_prefix_verification(self, deployment):
        """The §7.3 'shortest route to Google' case: one prefix only."""
        network, dep = deployment
        node = dep.node(FOCUS_AS)
        record = dep.commit_now(FOCUS_AS)
        reconstruction = node.proofgen.reconstruct(record.commit_time)
        proofs = node.proofgen.proofs_for_prefix(reconstruction, 7, P)
        full = node.proofgen.proofs_for(reconstruction, 7)
        assert proofs.proof_count() < full.proof_count()
        assert proofs.wire_size() < full.wire_size()
        # The single-prefix set still checks out for that prefix.
        neighbor_node = dep.node(7)
        commitment = neighbor_node.commitment_from(
            FOCUS_AS, record.commit_time) or record.message
        view = neighbor_node.view_at(record.commit_time)
        report = neighbor_node.checker.check(
            commitment, proofs,
            my_exports_to_elector={
                p: r for p, r in view.exports.get(FOCUS_AS, {}).items()
                if p == P},
            my_imports_from_elector={
                p: r for p, r in view.imports.get(FOCUS_AS, {}).items()
                if p == P},
            promise=node.recorder.promises.get(7))
        assert report.ok

    def test_watch_prefix_with_null_offer(self, deployment):
        """A consumer may demand ⊥-offer proofs for a prefix it knows
        about; a clean elector passes."""
        network, dep = deployment
        record = dep.commit_now(FOCUS_AS)
        # AS 2 never receives ORIGINATED back from AS 5 (it supplied the
        # better route itself or valley-freedom suppressed it); it can
        # still watch the prefix.
        outcomes = dep.verify(FOCUS_AS, neighbors=[2],
                              watch={2: [ORIGINATED]})
        assert outcomes[0].report.ok

    def test_proof_traffic_metered(self, deployment):
        network, dep = deployment
        from repro.spider.node import PROOF_TRAFFIC
        dep.commit_now(FOCUS_AS)
        dep.verify(FOCUS_AS)
        assert network.meter(FOCUS_AS).total(PROOF_TRAFFIC) > 0

    def test_verify_without_commitment_rejected(self, deployment):
        network, dep = deployment
        with pytest.raises(ValueError):
            # AS 10 is a leaf; give it no commitments... it may have
            # some from earlier tests, so use a fresh deployment check:
            from repro.netsim.network import Network
            from repro.netsim.topology import figure5_topology
            from repro.spider.node import SpiderDeployment, \
                evaluation_scheme
            from repro.spider.config import SpiderConfig
            net2 = Network(figure5_topology())
            dep2 = SpiderDeployment(net2, scheme=evaluation_scheme(5),
                                    config=SpiderConfig())
            dep2.verify(FOCUS_AS)
