"""Tests for the relation-aware Gao-Rexford promise construction."""

import pytest

from repro.bgp.policy import Relation
from repro.bgp.prefix import Prefix
from repro.bgp.route import NULL_ROUTE, Route
from repro.netsim.network import Network, TraceEvent
from repro.netsim.topology import FOCUS_AS, INJECTION_AS, figure5_topology
from repro.spider.config import SpiderConfig
from repro.spider.node import SpiderDeployment
from repro.spider.promises import GaoRexfordPromises, GaoRexfordScheme

P = Prefix.parse("203.0.113.0/24")

RELATIONS = {2: Relation.PROVIDER, 4: Relation.PROVIDER,
             6: Relation.PROVIDER, 7: Relation.CUSTOMER,
             8: Relation.CUSTOMER}


@pytest.fixture(scope="module")
def bundle():
    return GaoRexfordScheme(elector=5, relations=RELATIONS, max_length=4)


def via(first_hop, length):
    path = (first_hop,) + tuple(range(900, 900 + length - 1))
    return Route(prefix=P, as_path=path, neighbor=first_hop)


class TestScheme:
    def test_class_count(self, bundle):
        # 5 neighbor groups + origin group, 4 lengths each, plus ⊥.
        assert bundle.scheme.k == 1 + 6 * 4

    def test_null_class(self, bundle):
        assert bundle.scheme.classify(NULL_ROUTE) == 0

    def test_groups_split_by_first_hop(self, bundle):
        assert bundle.scheme.classify(via(7, 2)) != \
            bundle.scheme.classify(via(8, 2))

    def test_shorter_is_higher_within_group(self, bundle):
        assert bundle.scheme.classify(via(7, 1)) > \
            bundle.scheme.classify(via(7, 3))

    def test_origin_routes_have_their_own_group(self, bundle):
        origin = Route(prefix=P, as_path=(5,), neighbor=0)
        index = bundle.scheme.classify(origin)
        assert bundle.scheme.labels[index] == "origin-length-1"

    def test_overlong_falls_to_null_class(self, bundle):
        assert bundle.scheme.classify(via(7, 9)) == 0

    def test_foreign_first_hop_unusable(self, bundle):
        assert bundle.scheme.classify(via(42, 2)) == 0

    def test_labels_human_readable(self, bundle):
        assert "via7-length-2" in bundle.scheme.labels


class TestPromiseToCustomer:
    def test_true_preference_promised(self, bundle):
        promise = bundle.promise_for(8)
        scheme = bundle.scheme
        # Customer routes (via 7) beat provider routes (via 2) of any
        # length — the local-pref tier dominates.
        assert promise.prefers(scheme.classify(via(7, 4)),
                               scheme.classify(via(2, 1)))
        # Within a tier, shorter wins.
        assert promise.prefers(scheme.classify(via(2, 1)),
                               scheme.classify(via(2, 3)))

    def test_same_tier_same_length_indifferent(self, bundle):
        promise = bundle.promise_for(8)
        scheme = bundle.scheme
        a = scheme.classify(via(2, 2))
        b = scheme.classify(via(4, 2))
        assert not promise.comparable(a, b) or a == b

    def test_routes_through_consumer_unordered(self, bundle):
        """BGP never exports a route back through its own path, so the
        promise to AS 8 says nothing about via-8 classes."""
        promise = bundle.promise_for(8)
        scheme = bundle.scheme
        via8 = scheme.classify(via(8, 1))
        for other in range(scheme.k):
            if other != via8:
                assert not promise.comparable(via8, other)


class TestPromiseToProvider:
    def test_only_customer_tier_ordered(self, bundle):
        promise = bundle.promise_for(2)
        scheme = bundle.scheme
        # Customer-tier classes are ordered among themselves...
        assert promise.prefers(scheme.classify(via(7, 1)),
                               scheme.classify(via(8, 3)))
        # ...but provider-tier classes are never promised to a provider.
        provider_class = scheme.classify(via(4, 1))
        customer_class = scheme.classify(via(7, 3))
        assert not promise.comparable(provider_class, customer_class)

    def test_null_route_unconstrained(self, bundle):
        """Export filtering toward a provider is always legitimate."""
        promise = bundle.promise_for(2)
        scheme = bundle.scheme
        null_class = scheme.classify(NULL_ROUTE)
        for index in range(scheme.k):
            assert not promise.prefers(index, null_class) or True
        # Specifically: no customer class is promised *above* ⊥.
        assert not promise.prefers(scheme.classify(via(7, 1)),
                                   null_class)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def deployment(self):
        network = Network(figure5_topology())
        grp = GaoRexfordPromises(network.topology, max_length=8)
        deployment = SpiderDeployment(
            network, config=SpiderConfig(),
            scheme_factory=grp.scheme_for,
            promise_factory=grp.promise_for)
        network.attach_feed(INJECTION_AS, feed_asn=65000)
        network.schedule_trace(65000, [
            TraceEvent(1.0, P, (65000, 4000)),
        ])
        network.originate(9, Prefix.parse("192.0.2.0/24"))
        network.originate(3, Prefix.parse("198.51.100.0/24"))
        network.settle()
        return network, deployment

    def test_full_watch_verification_clean(self, deployment):
        """With Gao-Rexford promises, verification stays clean even when
        every neighbor watches every prefix it knows about — export
        filtering and loop suppression are correctly exempted."""
        network, dep = deployment
        for elector in network.topology.ases:
            dep.commit_now(elector)
            watch = {}
            for neighbor in network.topology.neighbors(elector):
                speaker = network.speakers.get(neighbor)
                if speaker is not None:
                    watch[neighbor] = sorted(speaker.loc_rib.prefixes())
            outcomes = dep.verify(elector, watch=watch)
            for outcome in outcomes:
                assert outcome.report.ok, \
                    (f"AS{outcome.neighbor} vs AS{elector}: "
                     f"{[str(v) for v in outcome.report.verdicts]}")

    def test_per_elector_schemes_differ(self, deployment):
        network, dep = deployment
        scheme5 = dep.node(5).recorder.scheme
        scheme2 = dep.node(2).recorder.scheme
        assert scheme5.labels != scheme2.labels
