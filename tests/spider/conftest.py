"""Shared fixtures for the SPIDeR tests: a small converged deployment."""

import pytest

from repro.bgp.prefix import Prefix
from repro.netsim.network import Network, TraceEvent
from repro.netsim.topology import FOCUS_AS, INJECTION_AS, figure5_topology
from repro.spider.config import SpiderConfig
from repro.spider.node import SpiderDeployment, evaluation_scheme

FEED = 65000
P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")
ORIGINATED = Prefix.parse("192.0.2.0/24")


@pytest.fixture(scope="module")
def deployment():
    """Figure 5 network + SPIDeR, converged on three prefixes."""
    network = Network(figure5_topology())
    deployment = SpiderDeployment(
        network, scheme=evaluation_scheme(10),
        config=SpiderConfig(commit_interval=60.0))
    network.attach_feed(INJECTION_AS, feed_asn=FEED)
    network.schedule_trace(FEED, [
        TraceEvent(1.0, P, (FEED, 4000)),
        TraceEvent(1.5, Q, (FEED, 4001, 4002)),
    ])
    network.originate(9, ORIGINATED)
    network.settle()
    return network, deployment
