"""Property tests: log replay reproduces committed state under random
workloads, and SPIDeR stays consistent through session churn."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.netsim.network import Network, TraceEvent
from repro.netsim.topology import FOCUS_AS, INJECTION_AS, figure5_topology
from repro.spider.config import SpiderConfig
from repro.spider.node import SpiderDeployment, evaluation_scheme

FEED = 65000

PREFIX_POOL = [Prefix.parse(f"10.{i}.0.0/16") for i in range(6)]


@st.composite
def random_trace(draw):
    """A random announce/withdraw interleaving over a small prefix pool."""
    n = draw(st.integers(1, 15))
    events = []
    live = set()
    t = 1.0
    for _ in range(n):
        t += draw(st.floats(0.2, 2.0))
        prefix = draw(st.sampled_from(PREFIX_POOL))
        if prefix in live and draw(st.booleans()):
            events.append(TraceEvent(time=t, prefix=prefix, path=None))
            live.discard(prefix)
        else:
            tail = draw(st.lists(st.integers(4000, 4020), min_size=0,
                                 max_size=3, unique=True))
            events.append(TraceEvent(time=t, prefix=prefix,
                                     path=(FEED, *tail)))
            live.add(prefix)
    return events


def build(events, commit_times=()):
    network = Network(figure5_topology())
    deployment = SpiderDeployment(network, scheme=evaluation_scheme(6),
                                  config=SpiderConfig())
    network.attach_feed(INJECTION_AS, feed_asn=FEED)
    network.schedule_trace(FEED, events)
    recorder = deployment.node(FOCUS_AS).recorder
    for t in commit_times:
        network.sim.at(t, lambda: recorder.make_commitment())
    network.settle()
    return network, deployment


class TestReplayProperties:
    @settings(max_examples=10, deadline=None)
    @given(random_trace())
    def test_every_commitment_reconstructible(self, events):
        """reconstruct() internally asserts the replayed MTT root equals
        the committed root; a mismatch raises."""
        end = max(e.time for e in events) + 1.0
        commit_times = [end / 3, 2 * end / 3, end]
        network, deployment = build(events, commit_times)
        node = deployment.node(FOCUS_AS)
        for record in node.recorder.commitments:
            reconstruction = node.proofgen.reconstruct(
                record.commit_time)
            assert reconstruction.root == record.root

    @settings(max_examples=10, deadline=None)
    @given(random_trace())
    def test_commitments_deterministic_across_runs(self, events):
        roots = []
        end = max(e.time for e in events) + 1.0
        for _ in range(2):
            network, deployment = build(events, [end])
            node = deployment.node(FOCUS_AS)
            roots.append([r.root for r in node.recorder.commitments])
        assert roots[0] == roots[1]

    @settings(max_examples=8, deadline=None)
    @given(random_trace())
    def test_verification_clean_under_random_churn(self, events):
        end = max(e.time for e in events) + 1.0
        network, deployment = build(events, [])
        deployment.commit_now(FOCUS_AS)
        outcomes = deployment.verify(FOCUS_AS)
        for outcome in outcomes:
            assert outcome.report.ok, \
                [str(v) for v in outcome.report.verdicts]

    @settings(max_examples=8, deadline=None)
    @given(random_trace())
    def test_log_chain_survives_random_workload(self, events):
        network, deployment = build(events, [])
        for node in deployment.nodes.values():
            node.recorder.log.verify_chain()
            assert not node.recorder.alarms


class TestSessionChurn:
    def test_session_teardown_withdraws_and_stays_consistent(self):
        network, deployment = build(
            [TraceEvent(time=1.0, prefix=PREFIX_POOL[0],
                        path=(FEED, 4000))])
        network.originate(9, PREFIX_POOL[1])
        network.settle()
        # AS 5 loses its session to AS 7 (which carried AS 9's prefix).
        speaker5 = network.speaker(FOCUS_AS)
        for update in speaker5.remove_neighbor(7):
            network.send(update)
        network.settle()
        assert speaker5.best(PREFIX_POOL[1]) is None
        # SPIDeR commitments and verification by the remaining
        # neighbors still work.
        deployment.commit_now(FOCUS_AS)
        outcomes = deployment.verify(FOCUS_AS,
                                     neighbors=[2, 4, 6, 8])
        for outcome in outcomes:
            assert outcome.report.ok, \
                [str(v) for v in outcome.report.verdicts]
