"""Tests for Nagle-style signature batching in the recorder (§6.2)."""

import pytest

from repro.bgp.messages import Announce, Withdraw
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.core.promise import total_order_promise
from repro.crypto.keys import KeyRegistry, make_identity
from repro.netsim.events import Simulator
from repro.spider.config import SpiderConfig
from repro.spider.log import EntryKind
from repro.spider.node import evaluation_scheme
from repro.spider.recorder import Recorder

ELECTOR, CONSUMER = 5, 7


def make_recorder(sim, nagle_delay=0.05, max_batch=16):
    registry = KeyRegistry()
    identity = make_identity(ELECTOR, registry=registry, bits=512,
                             seed=900)
    make_identity(CONSUMER, registry=registry, bits=512, seed=901)
    scheme = evaluation_scheme(5)
    sent = []
    recorder = Recorder(
        identity=identity, registry=registry, scheme=scheme,
        promises={CONSUMER: total_order_promise(scheme)},
        config=SpiderConfig(nagle_delay=nagle_delay,
                            max_batch=max_batch),
        clock=sim.clock,
        transport=lambda receiver, message: sent.append(message),
        schedule=sim.after)
    return recorder, sent


def announce(i):
    prefix = Prefix.parse(f"10.{i}.0.0/16")
    return Announce(sender=ELECTOR, receiver=CONSUMER,
                    route=Route(prefix=prefix, as_path=(ELECTOR, 9),
                                neighbor=9))


class TestBatching:
    def test_burst_shares_signatures(self):
        sim = Simulator()
        recorder, sent = make_recorder(sim)
        for i in range(10):
            recorder.mirror_sent_update(announce(i))
        assert sent == []  # nothing leaves before the nagle timer
        sim.run()
        assert len(sent) == 10
        # Two RSA operations cover the whole burst: the inner route
        # signatures and the message envelopes.
        assert recorder.signer.stats.signatures_made == 2
        assert recorder.signer.stats.payloads_signed == 20

    def test_messages_remain_individually_valid(self):
        sim = Simulator()
        recorder, sent = make_recorder(sim)
        for i in range(5):
            recorder.mirror_sent_update(announce(i))
        sim.run()
        assert all(m.valid(recorder.registry) for m in sent)

    def test_max_batch_chunks(self):
        sim = Simulator()
        recorder, sent = make_recorder(sim, max_batch=4)
        for i in range(10):
            recorder.mirror_sent_update(announce(i))
        sim.run()
        # 10 messages in chunks of 4 → 3 chunks × 2 signatures.
        assert recorder.signer.stats.signatures_made == 6

    def test_commitment_flushes_pending(self):
        sim = Simulator()
        recorder, sent = make_recorder(sim, nagle_delay=5.0)
        recorder.mirror_sent_update(announce(1))
        assert sent == []
        record = recorder.make_commitment()
        # The queued announce was forced out before committing, so the
        # commitment covers it.
        announces = [m for m in sent if hasattr(m, "route")]
        assert announces
        prefix = announces[0].prefix
        reconstruction_bits = recorder.mtt_entries(recorder.state)
        assert prefix in reconstruction_bits

    def test_mixed_kinds_in_one_batch(self):
        sim = Simulator()
        recorder, sent = make_recorder(sim)
        recorder.mirror_sent_update(announce(1))
        recorder.mirror_sent_update(
            Withdraw(sender=ELECTOR, receiver=CONSUMER,
                     prefix=Prefix.parse("10.1.0.0/16")))
        sim.run()
        kinds = {type(m).__name__ for m in sent}
        assert kinds == {"SpiderAnnounce", "SpiderWithdraw"}
        # Announce adds a route signature; the withdraw shares the
        # envelope batch → 2 signatures total.
        assert recorder.signer.stats.signatures_made == 2

    def test_log_order_preserved(self):
        sim = Simulator()
        recorder, sent = make_recorder(sim)
        for i in range(5):
            recorder.mirror_sent_update(announce(i))
        sim.run()
        logged = [e for e in recorder.log
                  if e.kind is EntryKind.SENT_ANNOUNCE]
        sent_prefixes = [m.prefix for m in sent]
        assert [e.payload.prefix for e in logged] == sent_prefixes

    def test_immediate_mode_without_scheduler(self):
        sim = Simulator()
        registry = KeyRegistry()
        identity = make_identity(ELECTOR, registry=registry, bits=512,
                                 seed=902)
        scheme = evaluation_scheme(5)
        sent = []
        recorder = Recorder(
            identity=identity, registry=registry, scheme=scheme,
            promises={}, config=SpiderConfig(),
            clock=sim.clock,
            transport=lambda receiver, message: sent.append(message),
            schedule=None)
        recorder.mirror_sent_update(announce(1))
        assert len(sent) == 1  # no scheduler → synchronous send
