"""Tests for §6.3 evidence of import/export and its refutation."""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.crypto.keys import KeyRegistry, make_identity
from repro.crypto.signatures import Signer
from repro.spider.evidence import ExportEvidence, ImportEvidence, \
    export_evidence_valid, import_evidence_valid, refute_export, \
    refute_import
from repro.spider.wire import SpiderAck, SpiderAnnounce, SpiderWithdraw

P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")
ALICE, BOB = 6, 5


@pytest.fixture(scope="module")
def world():
    registry = KeyRegistry()
    alice = make_identity(ALICE, registry=registry, bits=512, seed=71)
    bob = make_identity(BOB, registry=registry, bits=512, seed=72)
    return registry, Signer(alice), Signer(bob)


def route(path=(ALICE, 91), prefix=P):
    return Route(prefix=prefix, as_path=tuple(path), neighbor=path[0])


def make_import_story(sign_alice, sign_bob, announce_t=10.0,
                      withdraw_t=20.0, prefix=P):
    """Alice announces to Bob, Bob acks; Alice later withdraws."""
    announce = SpiderAnnounce.make(sign_alice, receiver=BOB,
                                   timestamp=announce_t,
                                   route=route(prefix=prefix),
                                   underlying=None)
    ack = SpiderAck.make(sign_bob, sender=ALICE,
                         timestamp=announce_t + 0.1,
                         message_hash=announce.message_hash())
    withdraw = SpiderWithdraw.make(sign_alice, receiver=BOB,
                                   timestamp=withdraw_t, prefix=prefix)
    withdraw_ack = SpiderAck.make(sign_bob, sender=ALICE,
                                  timestamp=withdraw_t + 0.1,
                                  message_hash=withdraw.message_hash())
    return announce, ack, withdraw, withdraw_ack


class TestImportEvidence:
    def test_valid_between_announce_and_withdraw(self, world):
        registry, sign_alice, sign_bob = world
        announce, ack, _, _ = make_import_story(sign_alice, sign_bob)
        evidence = ImportEvidence(announce=announce, ack=ack)
        assert import_evidence_valid(registry, evidence, commit_time=15.0)

    def test_invalid_before_announce(self, world):
        registry, sign_alice, sign_bob = world
        announce, ack, _, _ = make_import_story(sign_alice, sign_bob)
        evidence = ImportEvidence(announce=announce, ack=ack)
        assert not import_evidence_valid(registry, evidence,
                                         commit_time=5.0)

    def test_mismatched_ack_rejected(self, world):
        registry, sign_alice, sign_bob = world
        announce, _, _, _ = make_import_story(sign_alice, sign_bob)
        other, other_ack, _, _ = make_import_story(sign_alice, sign_bob,
                                                   prefix=Q)
        evidence = ImportEvidence(announce=announce, ack=other_ack)
        assert not import_evidence_valid(registry, evidence,
                                         commit_time=15.0)

    def test_refuted_by_later_withdrawal(self, world):
        registry, sign_alice, sign_bob = world
        announce, ack, withdraw, withdraw_ack = make_import_story(
            sign_alice, sign_bob)
        evidence = ImportEvidence(announce=announce, ack=ack)
        assert refute_import(registry, evidence, withdraw, withdraw_ack,
                             commit_time=30.0)

    def test_not_refuted_before_withdrawal(self, world):
        registry, sign_alice, sign_bob = world
        announce, ack, withdraw, withdraw_ack = make_import_story(
            sign_alice, sign_bob)
        evidence = ImportEvidence(announce=announce, ack=ack)
        assert not refute_import(registry, evidence, withdraw,
                                 withdraw_ack, commit_time=15.0)

    def test_refutation_needs_matching_prefix(self, world):
        registry, sign_alice, sign_bob = world
        announce, ack, _, _ = make_import_story(sign_alice, sign_bob)
        _, _, withdraw_q, withdraw_q_ack = make_import_story(
            sign_alice, sign_bob, prefix=Q)
        evidence = ImportEvidence(announce=announce, ack=ack)
        assert not refute_import(registry, evidence, withdraw_q,
                                 withdraw_q_ack, commit_time=30.0)

    def test_refutation_needs_electors_ack(self, world):
        """A fabricated withdrawal without the elector's ack cannot
        refute: the ack pins the effective time to the elector's clock."""
        registry, sign_alice, sign_bob = world
        announce, ack, withdraw, _ = make_import_story(sign_alice,
                                                       sign_bob)
        forged_ack = SpiderAck.make(sign_alice, sender=ALICE,
                                    timestamp=20.1,
                                    message_hash=withdraw.message_hash())
        evidence = ImportEvidence(announce=announce, ack=ack)
        assert not refute_import(registry, evidence, withdraw,
                                 forged_ack, commit_time=30.0)


class TestExportEvidence:
    def test_valid_after_announce(self, world):
        registry, sign_alice, sign_bob = world
        announce = SpiderAnnounce.make(sign_bob, receiver=ALICE,
                                       timestamp=10.0,
                                       route=route(path=(BOB, 91)),
                                       underlying=None)
        evidence = ExportEvidence(announce=announce)
        assert export_evidence_valid(registry, evidence,
                                     commit_time=15.0)
        assert not export_evidence_valid(registry, evidence,
                                         commit_time=5.0)

    def test_reannounce_not_acceptable(self, world):
        """§6.6: RE-ANNOUNCEs cannot stand in for original evidence."""
        registry, sign_alice, sign_bob = world
        reannounce = SpiderAnnounce.make(sign_bob, receiver=ALICE,
                                         timestamp=10.0,
                                         route=route(path=(BOB, 91)),
                                         underlying=None,
                                         reannounce=True)
        evidence = ExportEvidence(announce=reannounce)
        assert not export_evidence_valid(registry, evidence,
                                         commit_time=15.0)

    def test_refuted_by_bobs_withdrawal_with_alices_ack(self, world):
        registry, sign_alice, sign_bob = world
        announce = SpiderAnnounce.make(sign_bob, receiver=ALICE,
                                       timestamp=10.0,
                                       route=route(path=(BOB, 91)),
                                       underlying=None)
        withdraw = SpiderWithdraw.make(sign_bob, receiver=ALICE,
                                       timestamp=20.0, prefix=P)
        alice_ack = SpiderAck.make(sign_alice, sender=BOB,
                                   timestamp=20.1,
                                   message_hash=withdraw.message_hash())
        evidence = ExportEvidence(announce=announce)
        assert refute_export(registry, evidence, withdraw, alice_ack,
                             commit_time=30.0)
        assert not refute_export(registry, evidence, withdraw, alice_ack,
                                 commit_time=15.0)

    def test_refutation_requires_consumers_ack(self, world):
        """Bob cannot back-date a withdrawal: without Alice's matching
        ACK the refutation fails."""
        registry, sign_alice, sign_bob = world
        announce = SpiderAnnounce.make(sign_bob, receiver=ALICE,
                                       timestamp=10.0,
                                       route=route(path=(BOB, 91)),
                                       underlying=None)
        withdraw = SpiderWithdraw.make(sign_bob, receiver=ALICE,
                                       timestamp=20.0, prefix=P)
        self_ack = SpiderAck.make(sign_bob, sender=BOB, timestamp=20.1,
                                  message_hash=withdraw.message_hash())
        evidence = ExportEvidence(announce=announce)
        assert not refute_export(registry, evidence, withdraw, self_ack,
                                 commit_time=30.0)
