"""Tests for the tamper-evident log, checkpoints, and replay."""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.crypto.keys import KeyRegistry, make_identity
from repro.crypto.signatures import Signer
from repro.spider.checkpoint import RoutingState, apply_entry, \
    elector_view, replay, take_checkpoint
from repro.spider.log import EntryKind, SpiderLog, TamperError
from repro.spider.wire import SpiderAnnounce, SpiderWithdraw

P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")


@pytest.fixture(scope="module")
def registry():
    return KeyRegistry()


@pytest.fixture(scope="module")
def neighbor(registry):
    return make_identity(7, registry=registry, bits=512, seed=601)


def announce(identity, t, prefix=P, path=(7, 9), receiver=5):
    route = Route(prefix=prefix, as_path=tuple(path), neighbor=path[0])
    return SpiderAnnounce.make(Signer(identity), receiver=receiver,
                               timestamp=t, route=route, underlying=None)


def withdraw(identity, t, prefix=P, receiver=5):
    return SpiderWithdraw.make(Signer(identity), receiver=receiver,
                               timestamp=t, prefix=prefix)


class TestSpiderLog:
    def test_append_and_iterate(self):
        log = SpiderLog()
        log.append(1.0, EntryKind.COMMITMENT, {"seed": b"s"}, 32)
        log.append(2.0, EntryKind.COMMITMENT, {"seed": b"t"}, 32)
        assert len(log) == 2
        assert [e.index for e in log] == [0, 1]

    def test_chain_verifies(self):
        log = SpiderLog()
        for i in range(10):
            log.append(float(i), EntryKind.COMMITMENT, {}, 32)
        log.verify_chain()

    def test_tampering_detected(self):
        log = SpiderLog()
        for i in range(5):
            log.append(float(i), EntryKind.COMMITMENT, {}, 32)
        import dataclasses
        entries = log._entries
        entries[2] = dataclasses.replace(entries[2], size_bytes=999)
        with pytest.raises(TamperError):
            log.verify_chain()

    def test_timestamps_never_go_backwards(self):
        log = SpiderLog()
        log.append(5.0, EntryKind.COMMITMENT, {}, 32)
        entry = log.append(3.0, EntryKind.COMMITMENT, {}, 32)
        assert entry.timestamp == 5.0

    def test_byte_accounting(self):
        log = SpiderLog()
        log.append(1.0, EntryKind.SENT_ANNOUNCE, None, 100)
        log.append(2.0, EntryKind.COMMITMENT, None, 32)
        assert log.total_bytes() == 132
        assert log.total_bytes(EntryKind.COMMITMENT) == 32

    def test_queries(self):
        log = SpiderLog()
        log.append(1.0, EntryKind.SENT_ANNOUNCE, None, 10)
        log.append(2.0, EntryKind.CHECKPOINT, RoutingState(), 10)
        log.append(3.0, EntryKind.COMMITMENT, {}, 32)
        assert len(log.entries_between(1.5, 3.0)) == 2
        assert len(log.entries_up_to(2.0)) == 2
        assert log.last_checkpoint_before(2.5).timestamp == 2.0
        assert log.last_checkpoint_before(1.0) is None
        assert log.commitment_at(3.0) is not None
        assert log.commitment_at(4.0) is None

    def test_trim_respects_retention(self):
        log = SpiderLog(retention_seconds=100.0)
        log.append(0.0, EntryKind.CHECKPOINT, RoutingState(), 10)
        for i in range(5):
            log.append(float(i + 1), EntryKind.SENT_ANNOUNCE, None, 10)
        log.append(50.0, EntryKind.CHECKPOINT, RoutingState(), 10)
        # At t=120, the horizon is 20: the t=0 checkpoint is stale but
        # the t=50 one is too recent to serve as a base... the t=0 one
        # is the last checkpoint ≤ horizon, so entries before it (none)
        # are dropped.
        assert log.trim(now=120.0).entries == 0
        # At t=200 the horizon is 100: the t=50 checkpoint qualifies and
        # everything before it can go.
        dropped = log.trim(now=200.0)
        assert dropped.entries == 6
        assert dropped.bytes_reclaimed == 60
        assert dropped.bytes_by_kind == {"checkpoints": 10, "log": 50}
        assert log._entries[0].kind is EntryKind.CHECKPOINT


class TestRoutingState:
    def test_copy_is_deep_enough(self):
        state = RoutingState()
        state.imports.setdefault(7, {})[P] = Route(prefix=P,
                                                   as_path=(7, 9),
                                                   neighbor=7)
        clone = state.copy()
        clone.imports[7].pop(P)
        assert P in state.imports[7]

    def test_known_prefixes(self):
        state = RoutingState()
        state.imports.setdefault(7, {})[P] = Route(prefix=P,
                                                   as_path=(7, 9),
                                                   neighbor=7)
        state.exports.setdefault(8, {})[Q] = Route(prefix=Q,
                                                   as_path=(5, 7, 9),
                                                   neighbor=7)
        state.origins.add(Prefix.parse("192.0.2.0/24"))
        assert len(state.known_prefixes()) == 3

    def test_serialized_size_positive(self):
        state = RoutingState()
        state.imports.setdefault(7, {})[P] = Route(prefix=P,
                                                   as_path=(7, 9),
                                                   neighbor=7)
        assert state.serialized_size() > 0


class TestElectorView:
    def test_strips_prepend(self):
        exported = Route(prefix=P, as_path=(5, 7, 9), neighbor=5)
        assert elector_view(exported, 5).as_path == (7, 9)

    def test_keeps_origin_route(self):
        origin = Route(prefix=P, as_path=(5,), neighbor=0)
        assert elector_view(origin, 5).as_path == (5,)

    def test_leaves_foreign_routes_alone(self):
        route = Route(prefix=P, as_path=(7, 9), neighbor=7)
        assert elector_view(route, 5) == route


class TestReplay:
    def test_replay_reconstructs_state(self, registry, neighbor):
        log = SpiderLog()
        a1 = announce(neighbor, 1.0)
        log.append(1.0, EntryKind.RECV_ANNOUNCE, a1, a1.wire_size())
        w1 = withdraw(neighbor, 2.0)
        log.append(2.0, EntryKind.RECV_WITHDRAW, w1, w1.wire_size())
        a2 = announce(neighbor, 3.0, prefix=Q)
        log.append(3.0, EntryKind.RECV_ANNOUNCE, a2, a2.wire_size())

        at_1 = replay(log, 5, until=1.5)
        assert P in at_1.imports[7] and Q not in at_1.imports.get(7, {})
        at_3 = replay(log, 5, until=3.0)
        assert P not in at_3.imports.get(7, {})
        assert Q in at_3.imports[7]

    def test_replay_stamps_neighbor(self, registry, neighbor):
        log = SpiderLog()
        a1 = announce(neighbor, 1.0)
        log.append(1.0, EntryKind.RECV_ANNOUNCE, a1, a1.wire_size())
        state = replay(log, 5, until=2.0)
        assert state.imports[7][P].neighbor == 7

    def test_replay_from_checkpoint(self, registry, neighbor):
        log = SpiderLog()
        a1 = announce(neighbor, 1.0)
        log.append(1.0, EntryKind.RECV_ANNOUNCE, a1, a1.wire_size())
        base = replay(log, 5, until=1.5)
        take_checkpoint(log, 1.5, base)
        a2 = announce(neighbor, 2.0, prefix=Q)
        log.append(2.0, EntryKind.RECV_ANNOUNCE, a2, a2.wire_size())

        state = replay(log, 5, until=2.5)
        assert P in state.imports[7] and Q in state.imports[7]

    def test_checkpoint_isolation(self, registry, neighbor):
        """Mutating the live state after a checkpoint must not alter the
        stored snapshot."""
        log = SpiderLog()
        state = RoutingState()
        entry = take_checkpoint(log, 1.0, state)
        state.origins.add(P)
        assert P not in entry.payload.origins
