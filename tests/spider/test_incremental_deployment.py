"""Tests for incremental deployment (§6.7) and the SPIDeR-level
commitment cross-check."""

import pytest

from repro.bgp.prefix import Prefix
from repro.netsim.network import Network, TraceEvent
from repro.netsim.topology import FOCUS_AS, INJECTION_AS, figure5_topology
from repro.spider.config import SpiderConfig
from repro.spider.node import SpiderDeployment, evaluation_scheme

P = Prefix.parse("203.0.113.0/24")
GOOD = Prefix.parse("192.0.2.0/24")

#: The §6.7 minimal island: "one AS that has made some of the promises
#: ... and two customers or peers of that AS".
ISLAND = (5, 7, 8)


def build_island(participants=ISLAND):
    network = Network(figure5_topology())
    deployment = SpiderDeployment(
        network, scheme=evaluation_scheme(10),
        config=SpiderConfig(), participants=participants)
    network.attach_feed(INJECTION_AS, feed_asn=65000)
    network.schedule_trace(65000, [TraceEvent(1.0, P, (65000, 4000))])
    network.originate(9, GOOD)
    network.settle()
    return network, deployment


class TestIncrementalDeployment:
    def test_only_participants_have_nodes(self):
        network, deployment = build_island()
        assert set(deployment.nodes) == set(ISLAND)
        assert deployment.participants == ISLAND

    def test_bgp_unaffected_outside_island(self):
        network, deployment = build_island()
        # Non-participants still route normally.
        assert network.speaker(2).best(P) is not None
        assert network.speaker(10).best(GOOD) is not None

    def test_island_messages_only_flow_inside(self):
        network, deployment = build_island()
        node5 = deployment.node(FOCUS_AS)
        # AS 5's SPIDeR imports only cover participating neighbors.
        assert set(node5.recorder.state.imports) <= set(ISLAND)

    def test_island_verification_works(self):
        network, deployment = build_island()
        deployment.commit_now(FOCUS_AS)
        outcomes = deployment.verify(FOCUS_AS)
        # Only deployed neighbors participate, and they come back clean.
        assert {o.neighbor for o in outcomes} <= {7, 8}
        assert all(o.report.ok for o in outcomes)

    def test_island_detects_violations_within_subset(self):
        """§6.7: the island can still 'detect and prove violations of
        promises that involve inputs and outputs from that subset'."""
        from repro.faults.injector import FilteringRecorder, \
            install_import_filter
        import functools
        network = Network(figure5_topology())
        deployment = SpiderDeployment(
            network, scheme=evaluation_scheme(10),
            config=SpiderConfig(), participants=ISLAND,
            recorder_factories={
                FOCUS_AS: functools.partial(
                    FilteringRecorder, drop_from=7,
                    drop_prefixes={GOOD}),
            })
        install_import_filter(
            network.speaker(FOCUS_AS),
            lambda route, neighbor: neighbor == 7 and
            route.prefix == GOOD)
        network.originate(9, GOOD)
        network.settle()
        deployment.commit_now(FOCUS_AS)
        outcomes = deployment.verify(FOCUS_AS)
        detections = [o for o in outcomes if not o.report.ok]
        assert any(o.neighbor == 7 for o in detections)

    def test_growing_the_island(self):
        """Adding a participant extends coverage (islands grow at their
        perimeter)."""
        network, deployment = build_island(participants=(5, 7, 8, 2))
        deployment.commit_now(FOCUS_AS)
        outcomes = deployment.verify(FOCUS_AS)
        assert {o.neighbor for o in outcomes} == {2, 7, 8}
        assert all(o.report.ok for o in outcomes)


class TestCommitmentCrossCheck:
    def test_consistent_commitments_yield_no_pom(self):
        network, deployment = build_island(
            participants=tuple(range(1, 11)))
        record = deployment.commit_now(FOCUS_AS)
        network.settle()
        poms = deployment.cross_check_commitments(FOCUS_AS,
                                                  record.commit_time)
        assert poms == []

    def test_equivocation_yields_transferable_pom(self):
        import functools
        from repro.faults.injector import EquivocatingRecorder
        from repro.spider.evidence import commitment_equivocation_valid
        network = Network(figure5_topology())
        deployment = SpiderDeployment(
            network, scheme=evaluation_scheme(10),
            config=SpiderConfig(),
            recorder_factories={
                FOCUS_AS: functools.partial(EquivocatingRecorder,
                                            lie_to={8}),
            })
        network.originate(9, GOOD)
        network.settle()
        record = deployment.commit_now(FOCUS_AS)
        network.settle()
        poms = deployment.cross_check_commitments(FOCUS_AS,
                                                  record.commit_time)
        assert poms
        for pom in poms:
            assert pom.accused == FOCUS_AS
            assert commitment_equivocation_valid(deployment.registry,
                                                 pom)
