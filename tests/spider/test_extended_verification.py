"""Tests for extended verification (§6.6): RE-ANNOUNCE round trips and
suppressed-withdrawal detection."""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.netsim.topology import FOCUS_AS
from repro.spider.extended import producer_reannounces, \
    run_extended_verification
from repro.spider.wire import SpiderAnnounce

from .conftest import P, Q


@pytest.fixture(scope="module")
def committed(deployment):
    network, dep = deployment
    record = dep.commit_now(FOCUS_AS)
    network.settle()
    return network, dep, record


class TestProducerReannounces:
    def test_one_per_exported_route(self, committed):
        network, dep, record = committed
        node7 = dep.node(7)
        messages = producer_reannounces(node7, FOCUS_AS,
                                        record.commit_time)
        exported = node7.recorder.state.exports.get(FOCUS_AS, {})
        assert len(messages) == len(exported)
        assert {m.prefix for m in messages} == set(exported)

    def test_marked_as_reannounce(self, committed):
        network, dep, record = committed
        messages = producer_reannounces(dep.node(7), FOCUS_AS,
                                        record.commit_time)
        assert all(m.reannounce for m in messages)
        assert all(m.timestamp == record.commit_time for m in messages)

    def test_validly_signed(self, committed):
        network, dep, record = committed
        messages = producer_reannounces(dep.node(7), FOCUS_AS,
                                        record.commit_time)
        assert all(m.valid(dep.registry) for m in messages)

    def test_suppression_drops_routes(self, committed):
        network, dep, record = committed
        all_messages = producer_reannounces(dep.node(7), FOCUS_AS,
                                            record.commit_time)
        if not all_messages:
            pytest.skip("AS 7 exports nothing to AS 5 in this workload")
        victim = all_messages[0].prefix
        fewer = producer_reannounces(dep.node(7), FOCUS_AS,
                                     record.commit_time,
                                     suppress=(victim,))
        assert len(fewer) == len(all_messages) - 1


class TestExtendedVerification:
    def test_honest_run_clean(self, committed):
        network, dep, record = committed
        result = run_extended_verification(dep, FOCUS_AS,
                                           record.commit_time)
        assert result.clean, \
            ([str(v) for v in result.verdicts],
             result.refusing_producers)

    def test_every_producer_reannounced(self, committed):
        network, dep, record = committed
        result = run_extended_verification(dep, FOCUS_AS,
                                           record.commit_time)
        node5 = dep.node(FOCUS_AS)
        for producer, table in node5.recorder.state.imports.items():
            if table:
                assert result.reannounces.get(producer, 0) >= len(table)

    def test_refusing_producer_identified(self, committed):
        network, dep, record = committed
        # AS 2 exports P and Q to AS 5; it refuses to re-announce P.
        exported = dep.node(2).recorder.state.exports.get(FOCUS_AS, {})
        victim = sorted(exported)[0]
        result = run_extended_verification(
            dep, FOCUS_AS, record.commit_time,
            producer_suppress={2: (victim,)})
        assert 2 in result.refusing_producers

    def test_suppressed_withdrawal_detected(self, committed):
        """The §6.6 attack: the producer withdrew a route, the elector
        kept announcing it.  The consumer still holds the stale route;
        extended verification finds no fresh RE-ANNOUNCE backing it."""
        network, dep, record = committed
        # Fabricate the consumer's stale holding: a route via AS 5 whose
        # underlying producer route (via AS 2) no longer exists.
        stale_prefix = Prefix.parse("172.16.0.0/12")
        stale_route = Route(prefix=stale_prefix,
                            as_path=(FOCUS_AS, 2, 4999),
                            neighbor=FOCUS_AS)
        result = run_extended_verification(
            dep, FOCUS_AS, record.commit_time,
            stale_exports={7: {stale_prefix: stale_route}})
        assert not result.clean
        assert any(v.detector == 7 and "RE-ANNOUNCE" in v.description
                   for v in result.verdicts)

    def test_elector_originated_routes_need_no_backing(self, committed):
        """Routes the elector originates itself have no upstream
        producer; consumers must not demand RE-ANNOUNCEs for them."""
        network, dep, record = committed
        origin_prefix = Prefix.parse("10.99.0.0/16")
        origin_route = Route(prefix=origin_prefix, as_path=(FOCUS_AS,),
                             neighbor=FOCUS_AS)
        result = run_extended_verification(
            dep, FOCUS_AS, record.commit_time,
            stale_exports={7: {origin_prefix: origin_route}})
        assert result.clean

    def test_no_commitment_rejected(self, deployment):
        network, dep = deployment
        from repro.netsim.network import Network
        from repro.netsim.topology import figure5_topology
        from repro.spider.config import SpiderConfig
        from repro.spider.node import SpiderDeployment, evaluation_scheme
        net2 = Network(figure5_topology())
        dep2 = SpiderDeployment(net2, scheme=evaluation_scheme(5),
                                config=SpiderConfig())
        with pytest.raises(ValueError):
            run_extended_verification(dep2, FOCUS_AS)
