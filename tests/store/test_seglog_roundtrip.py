"""SegmentedLogStore behavior: append, rotation, fsync, trim, reopen."""

import pytest

from repro.obs.registry import Registry
from repro.spider.log import EntryKind, SpiderLog
from repro.store import SegmentedLogStore, StoreError, \
    droppable_segments, recover
from repro.store.segment import SegmentInfo


def commitment_payload(i):
    return {"seed": bytes(20), "root": b"root-%04d" % i}


def fill(store, n, start=0):
    """Drive ``n`` commitment entries through a SpiderLog into the
    store (the log computes indices and the hash chain)."""
    log = SpiderLog(retention_seconds=1e9, sink=store)
    for i in range(start, start + n):
        log.append(float(i), EntryKind.COMMITMENT,
                   commitment_payload(i), 32)
    return log


def reopened(tmp_path, **kwargs):
    kwargs.setdefault("registry", Registry())
    return SegmentedLogStore(str(tmp_path), **kwargs)


class TestRoundtrip:
    def test_recover_matches_appended(self, tmp_path):
        store = reopened(tmp_path, fsync="batch")
        log = fill(store, 10)
        store.close()
        recovery = recover(reopened(tmp_path))
        assert recovery.entries == list(log)
        assert recovery.head == log.head
        assert recovery.next_index == 10

    def test_restored_log_verifies_and_extends(self, tmp_path):
        store = reopened(tmp_path, fsync="always")
        fill(store, 5)
        store.close()
        store2 = reopened(tmp_path, fsync="always")
        recovery = recover(store2)
        log = SpiderLog.restore(recovery.entries,
                                retention_seconds=1e9, sink=store2)
        log.verify_chain()
        log.append(99.0, EntryKind.COMMITMENT,
                   commitment_payload(99), 32)
        store2.close()
        final = recover(reopened(tmp_path))
        assert len(final.entries) == 6
        assert final.entries[-1].index == 5

    def test_rotation_produces_segments(self, tmp_path):
        store = reopened(tmp_path, fsync="never", segment_bytes=128)
        fill(store, 12)
        assert len(store.segments()) > 1
        bases = [info.base_index for info in store.segments()]
        assert bases == sorted(bases)
        store.close()
        recovery = recover(reopened(tmp_path, segment_bytes=128))
        assert [e.index for e in recovery.entries] == list(range(12))


class TestAppendDiscipline:
    def test_first_append_must_be_entry_zero(self, tmp_path):
        store = reopened(tmp_path)
        restored = SpiderLog.restore(
            fill(reopened(tmp_path / "other"), 3)._entries,
            retention_seconds=1e9, sink=store)
        with pytest.raises(StoreError):
            restored.append(9.0, EntryKind.COMMITMENT,
                            commitment_payload(9), 32)

    def test_contiguous_indices_enforced(self, tmp_path):
        store = reopened(tmp_path)
        log = fill(store, 3)
        entry = log._entries[-1]
        with pytest.raises(StoreError):
            store.append(entry)  # replay of index 2 after index 2

    def test_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(StoreError):
            SegmentedLogStore(str(tmp_path), fsync="sometimes",
                              registry=Registry())


class TestFsyncAccounting:
    def test_always_fsyncs_per_append(self, tmp_path):
        registry = Registry()
        store = reopened(tmp_path / "a", fsync="always",
                         registry=registry)
        fill(store, 8)
        store.close()
        assert registry.total("store_fsyncs_total") >= 8

    def test_batch_fsyncs_only_at_sync(self, tmp_path):
        registry = Registry()
        store = reopened(tmp_path / "b", fsync="batch",
                         registry=registry)
        fill(store, 8)
        # Only the segment-creation header sync so far — no per-append
        # fsync under the group-commit policy.
        after_fill = registry.total("store_fsyncs_total")
        assert after_fill <= 1
        store.sync()
        assert registry.total("store_fsyncs_total") == after_fill + 1
        store.close()

    def test_append_metrics_split_by_kind(self, tmp_path):
        registry = Registry()
        store = reopened(tmp_path, registry=registry)
        fill(store, 4)
        assert registry.total("store_records_total",
                              kind="commitments") == 4
        assert registry.total("store_append_bytes_total",
                              kind="commitments") > 0


class TestTrim:
    def test_whole_segment_compaction(self, tmp_path):
        registry = Registry()
        store = reopened(tmp_path, fsync="never", segment_bytes=128,
                         registry=registry)
        fill(store, 12)
        segments_before = store.segments()
        assert len(segments_before) >= 3
        keep_from = segments_before[-1].base_index
        reclaimed = store.trim(keep_from)
        assert reclaimed == sum(info.size_bytes
                                for info in segments_before[:-1])
        assert registry.total("store_reclaimed_bytes_total") \
            == reclaimed
        recovery = recover(store)
        assert recovery.entries[0].index == keep_from
        assert recovery.entries[-1].index == 11
        store.close()
        # Compacted stores re-verify on a cold open too (anchored at
        # the first surviving record).
        again = recover(reopened(tmp_path, segment_bytes=128))
        assert again.entries[0].index == keep_from

    def test_active_segment_never_dropped(self):
        segments = [SegmentInfo(path=f"seg{i}", base_index=i * 4,
                                size_bytes=100) for i in range(3)]
        # Even a horizon past everything keeps the final segment.
        dropped = droppable_segments(segments, keep_from_index=999)
        assert dropped == segments[:-1]

    def test_partial_coverage_keeps_segment(self):
        segments = [SegmentInfo(path="a", base_index=0, size_bytes=1),
                    SegmentInfo(path="b", base_index=4, size_bytes=1),
                    SegmentInfo(path="c", base_index=8, size_bytes=1)]
        # Horizon inside segment b: only a is fully covered.
        assert droppable_segments(segments, 5) == segments[:1]
        assert droppable_segments(segments, 3) == []
