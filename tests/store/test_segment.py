"""Byte-format unit tests: headers, frames, records, segment scans."""

import os
import struct

import pytest

from repro.store.segment import FRAME_OVERHEAD, HEADER_SIZE, \
    MAX_RECORD_SIZE, RECORD_OVERHEAD, SEGMENT_MAGIC, STORE_VERSION, \
    StoreCorruptionError, StoreError, decode_header, decode_record, \
    encode_header, encode_record, frame_record, list_segments, \
    parse_segment_filename, scan_segment, segment_filename

CHAIN = bytes(range(20))


def write_segment(path, base_index, payloads):
    """A segment file holding one frame per payload."""
    with open(path, "wb") as handle:
        handle.write(encode_header(base_index))
        for payload in payloads:
            handle.write(frame_record(payload))
    return str(path)


def record_payloads(n, base_index=0):
    return [encode_record(base_index + i, 32, CHAIN, b"entry-%03d" % i)
            for i in range(n)]


class TestFilenames:
    def test_roundtrip(self):
        for base in (0, 1, 2**40, 2**64 - 1):
            assert parse_segment_filename(segment_filename(base)) == base

    def test_sorts_by_base_index(self):
        names = [segment_filename(base) for base in (0, 9, 255, 2**32)]
        assert sorted(names) == names

    def test_foreign_names_rejected(self):
        for name in ("seg-0.log", "seg-XYZ.log", "other.txt",
                     "seg-0000000000000000.log.bak"):
            assert parse_segment_filename(name) is None


class TestHeader:
    def test_roundtrip(self):
        assert decode_header(encode_header(77)) == 77

    def test_truncated(self):
        with pytest.raises(StoreCorruptionError):
            decode_header(encode_header(0)[:-1])

    def test_bad_magic(self):
        bad = b"XXXXXXXX" + encode_header(0)[8:]
        with pytest.raises(StoreCorruptionError):
            decode_header(bad)

    def test_unsupported_version(self):
        bad = struct.pack(">8sIQ", SEGMENT_MAGIC, STORE_VERSION + 1, 0)
        with pytest.raises(StoreCorruptionError):
            decode_header(bad)

    def test_negative_base_rejected(self):
        with pytest.raises(StoreError):
            encode_header(-1)


class TestRecords:
    def test_roundtrip(self):
        payload = encode_record(3, 32, CHAIN, b"hello")
        record = decode_record(payload, end_offset=123)
        assert record.index == 3
        assert record.size_bytes == 32
        assert record.chain == CHAIN
        assert record.entry_bytes == b"hello"
        assert record.end_offset == 123

    def test_wrong_chain_length(self):
        with pytest.raises(StoreError):
            encode_record(0, 32, b"short", b"")

    def test_negative_fields(self):
        with pytest.raises(StoreError):
            encode_record(-1, 32, CHAIN, b"")

    def test_truncated_payload(self):
        payload = encode_record(0, 32, CHAIN, b"")
        with pytest.raises(StoreCorruptionError):
            decode_record(payload[:RECORD_OVERHEAD - 1], 0)

    def test_frame_bound(self):
        with pytest.raises(StoreError):
            frame_record(b"x" * (MAX_RECORD_SIZE + 1))


class TestScan:
    def test_clean_scan(self, tmp_path):
        payloads = record_payloads(3)
        path = write_segment(tmp_path / "seg.log", 0, payloads)
        result = scan_segment(path)
        assert result.error is None
        assert result.header_ok
        assert result.base_index == 0
        assert [r.index for r in result.records] == [0, 1, 2]
        assert result.valid_bytes == result.file_bytes
        assert result.torn_bytes == 0

    def test_torn_tail(self, tmp_path):
        path = write_segment(tmp_path / "seg.log", 0,
                             record_payloads(2))
        intact = os.path.getsize(path)
        with open(path, "ab") as handle:
            handle.write(frame_record(record_payloads(1)[0])[:7])
        result = scan_segment(path)
        assert result.error is not None
        assert result.header_ok
        assert len(result.records) == 2
        assert result.valid_bytes == intact
        assert result.torn_bytes == 7

    def test_bitflip_stops_at_crc(self, tmp_path):
        payloads = record_payloads(3)
        path = write_segment(tmp_path / "seg.log", 0, payloads)
        # Flip one byte inside the second frame's payload.
        offset = HEADER_SIZE + FRAME_OVERHEAD + len(payloads[0]) + \
            FRAME_OVERHEAD + 4
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        result = scan_segment(path)
        assert "CRC mismatch" in result.error
        assert len(result.records) == 1
        assert result.valid_bytes == \
            HEADER_SIZE + FRAME_OVERHEAD + len(payloads[0])

    def test_bad_header(self, tmp_path):
        path = tmp_path / "seg.log"
        path.write_bytes(b"not a segment header....")
        result = scan_segment(str(path))
        assert not result.header_ok
        assert result.error is not None
        assert result.valid_bytes == 0

    def test_short_file(self, tmp_path):
        path = tmp_path / "seg.log"
        path.write_bytes(b"abc")
        result = scan_segment(str(path))
        assert not result.header_ok
        assert result.torn_bytes == 3

    def test_insane_length_prefix(self, tmp_path):
        path = write_segment(tmp_path / "seg.log", 0, [])
        with open(path, "ab") as handle:
            handle.write(struct.pack(">II", MAX_RECORD_SIZE + 1, 0))
        result = scan_segment(path)
        assert "exceeds bound" in result.error
        assert result.records == []


class TestListSegments:
    def test_orders_and_filters(self, tmp_path):
        write_segment(tmp_path / segment_filename(16), 16,
                      record_payloads(1, 16))
        write_segment(tmp_path / segment_filename(0), 0,
                      record_payloads(1))
        (tmp_path / "README").write_text("not a segment")
        infos = list_segments(str(tmp_path))
        assert [info.base_index for info in infos] == [0, 16]
        assert all(info.size_bytes > HEADER_SIZE for info in infos)
