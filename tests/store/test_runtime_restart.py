"""NodeRuntime restart-from-store: the ISSUE 7 acceptance criterion.

A runtime with ``fsync=always`` must recover its full hash chain,
commitment seeds, and checkpoint cursor after dying mid-run — and the
evidence log it then produces must be byte-identical to one from a
process that never died.
"""

import pytest

from repro.obs.registry import Registry, use_registry
from repro.runtime.logdump import encode_log
from repro.runtime.scenario import ASN_A, ASN_B, _drive_first_round, \
    exchange_runtime, resume_store_exchange, run_store_reference, \
    run_store_smoke
from repro.runtime.transport import LoopbackHub
from repro.spider.log import EntryKind


@pytest.fixture()
def reference():
    with use_registry(Registry()):
        return run_store_reference()


def run_phase1(store_dir, close=True):
    with use_registry(Registry()):
        hub = LoopbackHub()
        rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                                store_dir=store_dir,
                                store_fsync="always")
        rt_b = exchange_runtime(ASN_B, hub.attach(ASN_B))
        _drive_first_round(hub, rt_a, rt_b)
        log_hex = encode_log(rt_a.recorder.log).hex()
        if close:
            rt_a.close()
        return log_hex


class TestInProcessRestart:
    def test_resumed_log_byte_identical(self, tmp_path, reference):
        store_dir = str(tmp_path / "store")
        phase1_hex = run_phase1(store_dir)
        assert phase1_hex == reference["phase1_hex"]
        with use_registry(Registry()):
            recovered, final = resume_store_exchange(store_dir)
        assert recovered["log_hex"] == reference["phase1_hex"]
        assert final["log_hex"] == reference["final_hex"]
        assert final["own_root"] == reference["final_root"]
        assert final["entries"] == reference["entries"]

    def test_checkpoint_cursor_survives(self, tmp_path, reference):
        """The resumed round must NOT re-checkpoint: the cursor from
        round one (24 h interval) was recovered, so exactly one new
        entry — the second commitment — appears."""
        store_dir = str(tmp_path / "store")
        run_phase1(store_dir)
        with use_registry(Registry()):
            recovered, final = resume_store_exchange(store_dir)
        assert final["entries"] == recovered["entries"] + 1

    def test_recovery_without_close_under_fsync_always(self, tmp_path):
        """Dropping the runtime without close() loses nothing."""
        store_dir = str(tmp_path / "store")
        phase1_hex = run_phase1(store_dir, close=False)
        with use_registry(Registry()):
            recovered, _final = resume_store_exchange(store_dir)
        assert recovered["log_hex"] == phase1_hex

    def test_recovered_runtime_reports_stats(self, tmp_path):
        store_dir = str(tmp_path / "store")
        run_phase1(store_dir)
        with use_registry(Registry()) as registry:
            hub = LoopbackHub()
            rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                                    store_dir=store_dir)
            assert rt_a.recovery is not None
            assert rt_a.recovery.stats.records == 4
            assert rt_a.recovery.stats.torn_bytes == 0
            kinds = [e.kind for e in rt_a.recovery.entries]
            assert kinds == [EntryKind.SENT_ANNOUNCE,
                             EntryKind.RECV_ACK,
                             EntryKind.COMMITMENT,
                             EntryKind.CHECKPOINT]
            assert registry.total("store_recovered_records_total") == 4
            rt_a.close()


class TestKillRestartSmoke:
    def test_sigkill_child_then_recover(self, tmp_path):
        """The full subprocess SIGKILL scenario (also run by CI)."""
        with use_registry(Registry()):
            summary = run_store_smoke(str(tmp_path / "store"))
        assert summary["byte_identical"] is True
        assert summary["recovered_entries"] == 4
        assert summary["final_entries"] == summary["reference_entries"]
