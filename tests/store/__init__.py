"""Tests for the durable segmented log store (:mod:`repro.store`)."""
