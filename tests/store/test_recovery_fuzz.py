"""Property tests: arbitrary truncation/corruption vs recovery.

The invariants under fuzz (ISSUE 7 satellite):

* truncating the *final* segment at any offset recovers exactly the
  durable prefix — every fully-written record before the cut survives,
  the torn tail is dropped, nothing reorders;
* under ``fsync=always``, a crash that never closes the store loses
  nothing that ``append`` returned for;
* any byte flip in a *sealed* segment fails closed at open;
* tampering that fixes up the CRC is still caught by the §6.5 hash
  chain at recovery.
"""

import os
import struct
import zlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.registry import Registry
from repro.spider.log import EntryKind, SpiderLog, TamperError
from repro.store import SegmentedLogStore, StoreCorruptionError, recover
from repro.store.segment import FRAME_OVERHEAD, HEADER_SIZE
from tests.strategies import commitment_payloads

SEGMENT_BYTES = 192  # tiny: a handful of commitment records per file


def build_store(directory, n, fsync="batch", payloads=None):
    """``n`` chained commitment entries over small segments; returns
    the in-memory entries (ground truth) with the store left open.

    ``payloads`` optionally supplies the commitment payload for each
    entry (drawn from :func:`tests.strategies.commitment_payloads` in
    the property tests); by default a fixed deterministic shape is
    used.
    """
    store = SegmentedLogStore(str(directory), fsync=fsync,
                              segment_bytes=SEGMENT_BYTES,
                              registry=Registry())
    log = SpiderLog(retention_seconds=1e9, sink=store)
    for i in range(n):
        payload = payloads[i] if payloads is not None else \
            {"seed": bytes(20), "root": b"root-%04d" % i}
        log.append(float(i), EntryKind.COMMITMENT, payload, 32)
    return store, list(log)


def frame_offsets(path):
    """(start, end) file offsets of every frame in one segment."""
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        data = handle.read()
    spans = []
    offset = HEADER_SIZE
    while offset < size:
        length, _crc = struct.unpack_from(">II", data, offset)
        end = offset + FRAME_OVERHEAD + length
        spans.append((offset, end))
        offset = end
    return spans


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_truncation_recovers_exact_durable_prefix(tmp_path_factory,
                                                  data):
    directory = tmp_path_factory.mktemp("trunc")
    n = data.draw(st.integers(min_value=1, max_value=16))
    store, entries = build_store(directory, n)
    store.close()
    final = store.segments()[-1]
    sealed_count = sum(
        1 for e in entries
        if e.index < final.base_index)
    cut = data.draw(st.integers(min_value=0,
                                max_value=final.size_bytes))
    survivors = sealed_count + sum(
        1 for _start, end in frame_offsets(final.path) if end <= cut)
    if cut < HEADER_SIZE:
        # Header never fully written: the file is a torn create and is
        # discarded whole (only sealed records survive).
        survivors = sealed_count
    with open(final.path, "r+b") as handle:
        handle.truncate(cut)

    recovery = recover(SegmentedLogStore(str(directory),
                                         segment_bytes=SEGMENT_BYTES,
                                         registry=Registry()))
    assert recovery.entries == entries[:survivors]
    assert recovery.next_index == survivors


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_fsync_always_loses_no_acked_entry(tmp_path_factory, data):
    directory = tmp_path_factory.mktemp("always")
    n = data.draw(st.integers(min_value=1, max_value=12))
    store, entries = build_store(directory, n, fsync="always")
    # No close, no sync: the process "dies" here.  Every append already
    # fsynced, so a second store must see all of them.
    recovery = recover(SegmentedLogStore(str(directory),
                                         segment_bytes=SEGMENT_BYTES,
                                         registry=Registry()))
    assert recovery.entries == entries
    store.close()


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_bitflip_in_sealed_segment_fails_closed(tmp_path_factory,
                                                data):
    directory = tmp_path_factory.mktemp("sealed")
    store, _entries = build_store(directory, 12)
    store.close()
    segments = store.segments()
    assert len(segments) >= 2, "need a sealed segment for this test"
    target = segments[data.draw(
        st.integers(min_value=0, max_value=len(segments) - 2))]
    pos = data.draw(st.integers(min_value=0,
                                max_value=target.size_bytes - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    with open(target.path, "r+b") as handle:
        handle.seek(pos)
        byte = handle.read(1)
        handle.seek(pos)
        handle.write(bytes([byte[0] ^ flip]))

    with pytest.raises(StoreCorruptionError):
        SegmentedLogStore(str(directory), segment_bytes=SEGMENT_BYTES,
                          registry=Registry())


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_bitflip_in_final_segment_yields_prefix_or_fails(
        tmp_path_factory, data):
    directory = tmp_path_factory.mktemp("tail")
    n = data.draw(st.integers(min_value=1, max_value=16))
    store, entries = build_store(directory, n)
    store.close()
    final = store.segments()[-1]
    pos = data.draw(st.integers(min_value=0,
                                max_value=final.size_bytes - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    with open(final.path, "r+b") as handle:
        handle.seek(pos)
        byte = handle.read(1)
        handle.seek(pos)
        handle.write(bytes([byte[0] ^ flip]))

    try:
        recovery = recover(SegmentedLogStore(
            str(directory), segment_bytes=SEGMENT_BYTES,
            registry=Registry()))
    except StoreCorruptionError:
        # A flipped full-length header is tampering, not a torn tail.
        assert pos < HEADER_SIZE
        return
    # Body flip: indistinguishable from a torn tail, so the store keeps
    # the intact prefix — never reordered, never fabricated.
    assert recovery.entries == entries[:len(recovery.entries)]
    assert len(recovery.entries) < n


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_arbitrary_payloads_roundtrip_through_recovery(tmp_path_factory,
                                                       data):
    """Recovery is payload-agnostic: drawn commitment payloads (shared
    strategy with the encoding fuzz) survive a close/reopen exactly."""
    directory = tmp_path_factory.mktemp("payloads")
    n = data.draw(st.integers(min_value=1, max_value=10))
    payloads = [data.draw(commitment_payloads()) for _ in range(n)]
    store, entries = build_store(directory, n, payloads=payloads)
    store.close()
    recovery = recover(SegmentedLogStore(str(directory),
                                         segment_bytes=SEGMENT_BYTES,
                                         registry=Registry()))
    assert recovery.entries == entries
    assert [e.payload for e in recovery.entries] == payloads


def test_crc_fixup_tampering_breaks_the_chain(tmp_path):
    """An adversary who edits a record *and* recomputes its CRC passes
    the structural scan but is caught by the hash-chain check."""
    store, _entries = build_store(tmp_path, 12)
    store.close()
    # Tamper inside the second segment: its records are past the chain
    # anchor, so their linkage is verified against segment one's.
    segments = store.segments()
    assert len(segments) >= 3
    target = segments[1]
    spans = frame_offsets(target.path)
    start, end = spans[0]
    with open(target.path, "r+b") as handle:
        data = bytearray(handle.read())
        payload = bytearray(data[start + FRAME_OVERHEAD:end])
        # Flip a bit inside the stored chain digest, then fix the CRC.
        payload[17 + 3] ^= 0x01
        struct.pack_into(">II", data, start, len(payload),
                         zlib.crc32(bytes(payload)) & 0xFFFFFFFF)
        data[start + FRAME_OVERHEAD:end] = payload
        handle.seek(0)
        handle.write(data)

    opened = SegmentedLogStore(str(tmp_path),
                               segment_bytes=SEGMENT_BYTES,
                               registry=Registry())
    with pytest.raises(TamperError):
        recover(opened)
