"""Kitchen-sink integration: the whole stack on a larger random network.

One scenario exercises every layer together: a CAIDA-like 30-AS topology
running Gao-Rexford policy, SPIDeR deployed with per-elector
relation-aware promises, multiple originated prefixes, periodic
commitments, full verification with watch sets, extended verification,
a fault injection, and the NetReview baseline auditing the same victim.
"""

import functools

import pytest

from repro.bgp.prefix import Prefix
from repro.faults.injector import FilteringRecorder, install_import_filter
from repro.netsim.network import Network
from repro.netsim.topology import caida_like_topology
from repro.spider.config import SpiderConfig
from repro.spider.extended import run_extended_verification
from repro.spider.node import SpiderDeployment
from repro.spider.promises import GaoRexfordPromises

PREFIXES = [Prefix.parse(f"198.51.{i}.0/24") for i in range(4)]


@pytest.fixture(scope="module")
def world():
    topology = caida_like_topology(n_ases=30, seed=11)
    network = Network(topology)
    grp = GaoRexfordPromises(topology, max_length=8)
    deployment = SpiderDeployment(
        network, config=SpiderConfig(commit_interval=60.0),
        scheme_factory=grp.scheme_for, promise_factory=grp.promise_for)
    # Originate prefixes at scattered stubs.
    origins = [topology.ases[-1], topology.ases[-5], topology.ases[7],
               topology.ases[2]]
    for prefix, origin in zip(PREFIXES, origins):
        network.originate(origin, prefix)
    network.settle()
    return topology, network, deployment


def hub_of(topology):
    """A well-connected AS to use as the verification target."""
    return max(topology.ases, key=topology.degree)


class TestFullStack:
    def test_routes_converged(self, world):
        topology, network, deployment = world
        for prefix in PREFIXES:
            reached = sum(
                1 for asn in topology.ases
                if network.speaker(asn).best(prefix) is not None)
            assert reached == len(topology.ases)

    def test_every_as_verifies_clean(self, world):
        topology, network, deployment = world
        for elector in topology.ases:
            deployment.commit_now(elector)
            outcomes = deployment.verify(elector)
            for outcome in outcomes:
                assert outcome.report.ok, \
                    (f"AS{outcome.neighbor} vs AS{elector}: "
                     f"{[str(v) for v in outcome.report.verdicts]}")

    def test_hub_verification_with_full_watch_sets(self, world):
        topology, network, deployment = world
        hub = hub_of(topology)
        deployment.commit_now(hub)
        watch = {
            neighbor: sorted(network.speaker(neighbor).loc_rib.prefixes())
            for neighbor in topology.neighbors(hub)
        }
        outcomes = deployment.verify(hub, watch=watch)
        assert all(o.report.ok for o in outcomes)

    def test_extended_verification_clean(self, world):
        topology, network, deployment = world
        hub = hub_of(topology)
        record = deployment.commit_now(hub)
        result = run_extended_verification(deployment, hub,
                                           record.commit_time)
        assert result.clean

    def test_log_chains_everywhere(self, world):
        topology, network, deployment = world
        for node in deployment.nodes.values():
            node.recorder.log.verify_chain()


class TestFaultOnRandomTopology:
    def test_filter_fault_detected_on_caida_like_graph(self):
        """The §7.4 fault transplanted off the toy topology: a random
        hub filters a customer route; that customer detects it."""
        topology = caida_like_topology(n_ases=30, seed=11)
        hub = max(topology.ases, key=topology.degree)
        customers = [n for n in topology.neighbors(hub)
                     if topology.relations_of(hub)[n].value == "customer"]
        if not customers:
            pytest.skip("hub has no customers in this draw")
        victim = customers[0]
        prefix = PREFIXES[0]

        network = Network(topology)
        grp = GaoRexfordPromises(topology, max_length=8)
        deployment = SpiderDeployment(
            network, config=SpiderConfig(commit_interval=60.0),
            scheme_factory=grp.scheme_for,
            promise_factory=grp.promise_for,
            recorder_factories={
                hub: functools.partial(FilteringRecorder,
                                       drop_from=victim,
                                       drop_prefixes={prefix}),
            })
        install_import_filter(
            network.speaker(hub),
            lambda route, neighbor: neighbor == victim and
            route.prefix == prefix)
        network.originate(victim, prefix)
        network.settle()
        deployment.commit_now(hub)
        outcomes = deployment.verify(hub)
        detections = {o.neighbor for o in outcomes if not o.report.ok}
        assert victim in detections

    def test_netreview_audit_agrees(self):
        """NetReview, on the same fault, reaches the same verdict by
        reading the victim hub's full log."""
        from repro.netreview.node import NetReviewDeployment
        topology = caida_like_topology(n_ases=30, seed=11)
        hub = max(topology.ases, key=topology.degree)
        customers = [n for n in topology.neighbors(hub)
                     if topology.relations_of(hub)[n].value == "customer"]
        if not customers:
            pytest.skip("hub has no customers in this draw")
        victim, prefix = customers[0], PREFIXES[0]

        network = Network(topology)
        grp = GaoRexfordPromises(topology, max_length=8)
        deployment = NetReviewDeployment(
            network, config=SpiderConfig(),
            scheme_factory=grp.scheme_for,
            promise_factory=grp.promise_for)
        install_import_filter(
            network.speaker(hub),
            lambda route, neighbor: neighbor == victim and
            route.prefix == prefix)
        network.originate(victim, prefix)
        network.settle()
        reports = deployment.audit_all_neighbors(hub)
        findings = [f for r in reports for f in r.findings]
        assert any(f.prefix == prefix for f in findings)
