"""Tests for import/export policy, including the Figure 2 community actions."""

import pytest

from repro.bgp.communities import ActionKind, CommunityAction, NO_ADVERTISE, \
    NO_EXPORT, community, local_pref_tiers
from repro.bgp.policy import ExportPolicy, ImportPolicy, NeighborConfig, \
    Relation, RELATION_LOCAL_PREF, gao_rexford_policy
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route

P = Prefix.parse("203.0.113.0/24")
LOCAL = 5


def neighbors(**kwargs):
    return {asn: NeighborConfig(asn=asn, relation=rel)
            for asn, rel in kwargs.items()}


@pytest.fixture()
def policies():
    relations = {1: Relation.CUSTOMER, 2: Relation.PEER,
                 3: Relation.PROVIDER}
    return gao_rexford_policy(LOCAL, relations)


class TestImportPolicy:
    def test_sets_local_pref_by_relation(self, policies):
        imports, _ = policies
        route = Route(prefix=P, as_path=(1, 9), neighbor=1)
        assert imports.apply(route, 1).local_pref == \
            RELATION_LOCAL_PREF[Relation.CUSTOMER]
        route = Route(prefix=P, as_path=(3, 9), neighbor=3)
        assert imports.apply(route, 3).local_pref == \
            RELATION_LOCAL_PREF[Relation.PROVIDER]

    def test_unknown_neighbor_defaults_to_peer_pref(self):
        imports = ImportPolicy(local_asn=LOCAL)
        route = Route(prefix=P, as_path=(7, 9), neighbor=7)
        assert imports.apply(route, 7).local_pref == \
            RELATION_LOCAL_PREF[Relation.PEER]

    def test_rejects_own_as_in_path(self, policies):
        imports, _ = policies
        route = Route(prefix=P, as_path=(1, LOCAL, 9), neighbor=1)
        assert imports.apply(route, 1) is None

    def test_rejects_path_not_starting_with_neighbor(self, policies):
        imports, _ = policies
        route = Route(prefix=P, as_path=(9, 8), neighbor=1)
        assert imports.apply(route, 1) is None

    def test_rejects_too_long_prefix(self):
        imports = ImportPolicy(local_asn=LOCAL, max_prefix_length=24)
        long_prefix = Prefix.parse("203.0.113.0/25")
        route = Route(prefix=long_prefix, as_path=(1,), neighbor=1)
        assert imports.apply(route, 1) is None

    def test_community_action_overrides_local_pref(self, policies):
        imports, _ = policies
        tag = community(LOCAL, 70)
        imports.add_action(CommunityAction(
            tag=tag, kind=ActionKind.SET_LOCAL_PREF, parameter=70))
        route = Route(prefix=P, as_path=(1, 9), neighbor=1,
                      communities=frozenset({tag}))
        assert imports.apply(route, 1).local_pref == 70

    def test_multiple_matching_tags_use_minimum(self, policies):
        imports, _ = policies
        t1, t2 = community(LOCAL, 70), community(LOCAL, 90)
        imports.add_action(CommunityAction(
            tag=t1, kind=ActionKind.SET_LOCAL_PREF, parameter=70))
        imports.add_action(CommunityAction(
            tag=t2, kind=ActionKind.SET_LOCAL_PREF, parameter=90))
        route = Route(prefix=P, as_path=(1, 9), neighbor=1,
                      communities=frozenset({t1, t2}))
        assert imports.apply(route, 1).local_pref == 70

    def test_local_pref_tiers_helper(self):
        actions = local_pref_tiers(LOCAL, (80, 100, 120))
        assert len(actions) == 3
        assert {a.parameter for a in actions} == {80, 100, 120}
        assert all(a.kind is ActionKind.SET_LOCAL_PREF for a in actions)

    def test_local_pref_tiers_requires_tier(self):
        with pytest.raises(ValueError):
            local_pref_tiers(LOCAL, ())


class TestExportPolicy:
    def _imported(self, imports, neighbor, path):
        return imports.apply(
            Route(prefix=P, as_path=path, neighbor=neighbor), neighbor)

    def test_customer_route_exported_everywhere(self, policies):
        imports, exports = policies
        route = self._imported(imports, 1, (1, 9))
        for neighbor in (2, 3):
            exported = exports.apply(route, neighbor)
            assert exported is not None
            assert exported.as_path[0] == LOCAL

    def test_peer_route_only_to_customers(self, policies):
        imports, exports = policies
        route = self._imported(imports, 2, (2, 9))
        assert exports.apply(route, 1) is not None   # to customer: yes
        assert exports.apply(route, 3) is None       # to provider: no

    def test_provider_route_only_to_customers(self, policies):
        imports, exports = policies
        route = self._imported(imports, 3, (3, 9))
        assert exports.apply(route, 1) is not None
        assert exports.apply(route, 2) is None

    def test_locally_originated_exported_everywhere(self, policies):
        _, exports = policies
        route = Route(prefix=P, as_path=(LOCAL,), neighbor=0)
        # Path already contains LOCAL, so prepending would loop; the
        # speaker exports its origin route pre-prepended.  Model that by a
        # fresh origination route with empty path handled via len<=1 rule.
        local = Route(prefix=P, as_path=(), neighbor=0)
        for neighbor in (1, 2, 3):
            assert exports.apply(local, neighbor) is not None

    def test_no_export_community_suppresses(self, policies):
        imports, exports = policies
        route = self._imported(imports, 1, (1, 9)).with_communities(
            NO_EXPORT)
        assert exports.apply(route, 2) is None

    def test_no_advertise_community_suppresses(self, policies):
        imports, exports = policies
        route = self._imported(imports, 1, (1, 9)).with_communities(
            NO_ADVERTISE)
        assert exports.apply(route, 2) is None

    def test_selective_export_by_specific_as(self, policies):
        imports, exports = policies
        tag = community(LOCAL, 200)
        exports.add_action(CommunityAction(
            tag=tag, kind=ActionKind.SELECTIVE_EXPORT_AS, parameter=2))
        route = self._imported(imports, 1, (1, 9)).with_communities(tag)
        assert exports.apply(route, 2) is None
        assert exports.apply(route, 3) is not None

    def test_selective_export_by_group(self):
        relations = {1: Relation.CUSTOMER, 2: Relation.CUSTOMER,
                     3: Relation.CUSTOMER}
        tag = community(LOCAL, 300)
        imports, exports = gao_rexford_policy(
            LOCAL, relations,
            community_actions=[CommunityAction(
                tag=tag, kind=ActionKind.SELECTIVE_EXPORT_GROUP,
                parameter="transit-free")],
            groups={2: ("transit-free",), 3: ("other",)})
        route = Route(prefix=P, as_path=(1, 9), neighbor=1,
                      communities=frozenset({tag}))
        imported = imports.apply(route, 1)
        assert exports.apply(imported, 2) is None
        assert exports.apply(imported, 3) is not None

    def test_export_never_sends_route_back_through_receiver(self, policies):
        imports, exports = policies
        route = self._imported(imports, 1, (1, 2, 9))
        assert exports.apply(route, 2) is None

    def test_local_action_tags_stripped_on_export(self, policies):
        imports, exports = policies
        tag = community(LOCAL, 70)
        action = CommunityAction(tag=tag, kind=ActionKind.SET_LOCAL_PREF,
                                 parameter=70)
        imports.add_action(action)
        exports.add_action(action)
        route = self._imported(imports, 1, (1, 9)).with_communities(tag)
        exported = exports.apply(route, 2)
        assert tag not in exported.communities

    def test_origin_info_tags_kept_on_export(self, policies):
        imports, exports = policies
        tag = community(LOCAL, 500)
        action = CommunityAction(tag=tag, kind=ActionKind.ROUTE_ORIGIN_INFO,
                                 parameter="JP")
        exports.add_action(action)
        route = self._imported(imports, 1, (1, 9)).with_communities(tag)
        exported = exports.apply(route, 2)
        assert tag in exported.communities

    def test_gao_rexford_disabled_exports_peer_routes_to_peers(self):
        relations = {2: Relation.PEER, 3: Relation.PEER}
        imports, exports = gao_rexford_policy(LOCAL, relations)
        exports.gao_rexford = False
        route = imports.apply(
            Route(prefix=P, as_path=(2, 9), neighbor=2), 2)
        assert exports.apply(route, 3) is not None


class TestPolicyConstruction:
    def test_gao_rexford_policy_wires_actions_both_ways(self):
        tag = community(LOCAL, 70)
        action = CommunityAction(tag=tag, kind=ActionKind.SET_LOCAL_PREF,
                                 parameter=70)
        imports, exports = gao_rexford_policy(
            LOCAL, {1: Relation.CUSTOMER}, community_actions=[action])
        assert tag in imports.community_actions
        assert tag in exports.community_actions

    def test_action_parameter_types_validated(self):
        with pytest.raises(TypeError):
            CommunityAction(tag=community(1, 1),
                            kind=ActionKind.SET_LOCAL_PREF,
                            parameter="not an int")
        with pytest.raises(TypeError):
            CommunityAction(tag=community(1, 1),
                            kind=ActionKind.SELECTIVE_EXPORT_GROUP,
                            parameter=5)
        with pytest.raises(TypeError):
            CommunityAction(tag=community(1, 1),
                            kind=ActionKind.SELECTIVE_EXPORT_AS,
                            parameter="x")
