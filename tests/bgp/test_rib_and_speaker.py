"""Tests for the RIBs and the speaker's update processing."""

import pytest

from repro.bgp.messages import Announce, Withdraw
from repro.bgp.policy import Relation, gao_rexford_policy
from repro.bgp.prefix import Prefix
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, rib_diff
from repro.bgp.route import Route
from repro.bgp.speaker import Speaker

P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")


def make_speaker(asn=5, relations=None):
    relations = relations or {1: Relation.CUSTOMER, 2: Relation.PEER,
                              3: Relation.PROVIDER}
    imports, exports = gao_rexford_policy(asn, relations)
    speaker = Speaker(asn, imports, exports)
    for neighbor in relations:
        speaker.add_neighbor(neighbor)
    return speaker


def announce(sender, receiver, prefix=P, path=None):
    path = path or (sender, 9)
    return Announce(sender=sender, receiver=receiver,
                    route=Route(prefix=prefix, as_path=tuple(path),
                                neighbor=sender))


class TestAdjRibIn:
    def test_put_and_candidates(self):
        rib = AdjRibIn()
        r1 = Route(prefix=P, as_path=(1, 9), neighbor=1)
        r2 = Route(prefix=P, as_path=(2, 9), neighbor=2)
        rib.put(1, r1)
        rib.put(2, r2)
        assert set(rib.candidates(P)) == {r1, r2}
        assert len(rib) == 2

    def test_replacement_keeps_one_route_per_neighbor(self):
        rib = AdjRibIn()
        rib.put(1, Route(prefix=P, as_path=(1, 9), neighbor=1))
        newer = Route(prefix=P, as_path=(1, 8), neighbor=1)
        rib.put(1, newer)
        assert rib.candidates(P) == [newer]

    def test_remove_clears_empty_prefix_entries(self):
        rib = AdjRibIn()
        rib.put(1, Route(prefix=P, as_path=(1, 9), neighbor=1))
        assert rib.remove(1, P) is not None
        assert rib.prefixes() == set()
        assert rib.remove(1, P) is None

    def test_drop_neighbor(self):
        rib = AdjRibIn()
        rib.put(1, Route(prefix=P, as_path=(1, 9), neighbor=1))
        rib.put(1, Route(prefix=Q, as_path=(1, 9), neighbor=1))
        rib.put(2, Route(prefix=P, as_path=(2, 9), neighbor=2))
        affected = rib.drop_neighbor(1)
        assert set(affected) == {P, Q}
        assert len(rib) == 1


class TestLocRib:
    def test_put_get_remove(self):
        rib = LocRib()
        r = Route(prefix=P, as_path=(1, 9), neighbor=1)
        rib.put(r)
        assert rib.get(P) == r
        assert rib.remove(P) == r
        assert rib.get(P) is None

    def test_snapshot_size_counts_encoded_routes(self):
        rib = LocRib()
        r = Route(prefix=P, as_path=(1, 9), neighbor=1)
        rib.put(r)
        assert rib.snapshot_size() == len(r.to_bytes())


class TestRibDiff:
    def test_diff_produces_minimal_updates(self):
        r1 = Route(prefix=P, as_path=(1, 9), neighbor=1)
        r1b = Route(prefix=P, as_path=(1, 8), neighbor=1)
        r2 = Route(prefix=Q, as_path=(1, 9), neighbor=1)
        announces, withdraws = rib_diff({P: r1, Q: r2}, {P: r1b})
        assert announces == [r1b]
        assert withdraws == [Q]

    def test_identical_tables_no_updates(self):
        r1 = Route(prefix=P, as_path=(1, 9), neighbor=1)
        assert rib_diff({P: r1}, {P: r1}) == ([], [])


class TestSpeaker:
    def test_announce_installs_and_propagates(self):
        speaker = make_speaker()
        out = speaker.receive(announce(1, 5))
        assert speaker.best(P) is not None
        # Customer route goes to every other neighbor (Gao-Rexford).
        receivers = {u.receiver for u in out}
        assert receivers == {2, 3}
        assert all(isinstance(u, Announce) for u in out)
        assert all(u.route.as_path[0] == 5 for u in out)

    def test_peer_route_propagates_only_to_customer(self):
        speaker = make_speaker()
        out = speaker.receive(announce(2, 5))
        assert {u.receiver for u in out if isinstance(u, Announce)} == {1}

    def test_withdraw_removes_and_propagates(self):
        speaker = make_speaker()
        speaker.receive(announce(1, 5))
        out = speaker.receive(Withdraw(sender=1, receiver=5, prefix=P))
        assert speaker.best(P) is None
        assert {u.receiver for u in out} == {2, 3}
        assert all(isinstance(u, Withdraw) for u in out)

    def test_better_route_replaces_advertisement(self):
        speaker = make_speaker()
        speaker.receive(announce(3, 5, path=(3, 8, 9)))      # provider
        out = speaker.receive(announce(1, 5, path=(1, 9)))   # customer
        # The customer route wins (higher local-pref) and is re-announced.
        assert speaker.best(P).neighbor == 1
        announced = [u for u in out if isinstance(u, Announce)]
        assert {u.receiver for u in announced} == {2, 3}

    def test_worse_route_triggers_no_updates(self):
        speaker = make_speaker()
        speaker.receive(announce(1, 5, path=(1, 9)))
        out = speaker.receive(announce(3, 5, path=(3, 8, 7, 9)))
        assert out == []

    def test_losing_best_falls_back_to_second(self):
        speaker = make_speaker()
        speaker.receive(announce(1, 5, path=(1, 9)))
        speaker.receive(announce(2, 5, path=(2, 9)))
        speaker.receive(Withdraw(sender=1, receiver=5, prefix=P))
        assert speaker.best(P).neighbor == 2
        # Peer route must have been withdrawn from peer/provider and
        # announced only to the customer.
        assert speaker.advertised_to(1, P) is not None
        assert speaker.advertised_to(2, P) is None
        assert speaker.advertised_to(3, P) is None

    def test_origination(self):
        speaker = make_speaker()
        out = speaker.originate(P)
        assert speaker.best(P).as_path == (5,)
        assert {u.receiver for u in out} == {1, 2, 3}

    def test_withdraw_origin(self):
        speaker = make_speaker()
        speaker.originate(P)
        out = speaker.withdraw_origin(P)
        assert speaker.best(P) is None
        assert all(isinstance(u, Withdraw) for u in out)

    def test_filtered_import_still_recorded_raw(self):
        # A route with our own AS in the path is rejected by import policy
        # but still visible in the raw RIB (it was advertised to us).
        speaker = make_speaker()
        bad = Announce(sender=1, receiver=5,
                       route=Route(prefix=P, as_path=(1, 5, 9), neighbor=1))
        speaker.receive(bad)
        assert speaker.received_from(1, P) is not None
        assert speaker.best(P) is None

    def test_rejects_update_for_other_as(self):
        speaker = make_speaker()
        with pytest.raises(ValueError):
            speaker.receive(announce(1, 6))

    def test_rejects_update_from_stranger(self):
        speaker = make_speaker()
        with pytest.raises(ValueError):
            speaker.receive(announce(9, 5))

    def test_observers_see_message_flow(self):
        speaker = make_speaker()
        seen_in, seen_out = [], []
        speaker.on_receive(seen_in.append)
        speaker.on_send(seen_out.append)
        speaker.receive(announce(1, 5))
        assert len(seen_in) == 1
        assert len(seen_out) == 2

    def test_remove_neighbor_withdraws_its_routes(self):
        speaker = make_speaker()
        speaker.receive(announce(1, 5))
        out = speaker.remove_neighbor(1)
        assert speaker.best(P) is None
        assert all(isinstance(u, Withdraw) for u in out)
        assert 1 not in {u.receiver for u in out}

    def test_stats_accumulate(self):
        speaker = make_speaker()
        speaker.receive(announce(1, 5))
        assert speaker.stats.updates_received == 1
        assert speaker.stats.updates_sent == 2
        assert speaker.stats.bytes_sent > 0

    def test_duplicate_announce_suppressed(self):
        speaker = make_speaker()
        speaker.receive(announce(1, 5))
        out = speaker.receive(announce(1, 5))
        assert out == []

    def test_self_peering_rejected(self):
        speaker = make_speaker()
        with pytest.raises(ValueError):
            speaker.add_neighbor(5)
