"""Tests for the lexicographic BGP decision process."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.decision import best_route, compare, rank, total_preference
from repro.bgp.prefix import Prefix
from repro.bgp.route import Origin, Route

P = Prefix.parse("203.0.113.0/24")
Q = Prefix.parse("198.51.100.0/24")


def mk(neighbor=1, path=(1, 9), lp=100, med=0, origin=Origin.IGP, rid=0):
    return Route(prefix=P, as_path=tuple(path), neighbor=neighbor,
                 local_pref=lp, med=med, origin=origin, router_id=rid)


class TestBestRoute:
    def test_empty_returns_none(self):
        assert best_route([]) is None

    def test_single_candidate_wins(self):
        r = mk()
        assert best_route([r]) == r

    def test_local_pref_dominates_path_length(self):
        long_but_preferred = mk(neighbor=1, path=(1, 5, 6, 7, 9), lp=120)
        short = mk(neighbor=2, path=(2, 9), lp=100)
        assert best_route([long_but_preferred, short]) == long_but_preferred

    def test_path_length_breaks_local_pref_tie(self):
        short = mk(neighbor=2, path=(2, 9), lp=100)
        long = mk(neighbor=1, path=(1, 5, 9), lp=100)
        assert best_route([short, long]) == short

    def test_origin_breaks_path_tie(self):
        igp = mk(neighbor=1, path=(1, 9), origin=Origin.IGP)
        egp = mk(neighbor=2, path=(2, 9), origin=Origin.EGP)
        incomplete = mk(neighbor=3, path=(3, 9), origin=Origin.INCOMPLETE)
        assert best_route([egp, incomplete, igp]) == igp

    def test_med_compared_within_same_neighbor_only(self):
        # Same neighbor AS: lower MED wins.
        low_med = mk(neighbor=1, path=(1, 9), med=5, rid=2)
        high_med = mk(neighbor=1, path=(1, 8), med=50, rid=1)
        assert best_route([high_med, low_med]) == low_med

    def test_med_ignored_across_neighbors(self):
        # Different neighbor ASes: MED must not decide; router id does.
        a = mk(neighbor=1, path=(1, 9), med=100, rid=1)
        b = mk(neighbor=2, path=(2, 9), med=0, rid=2)
        assert best_route([a, b]) == a

    def test_router_id_tiebreak(self):
        a = mk(neighbor=1, path=(1, 9), rid=1)
        b = mk(neighbor=2, path=(2, 9), rid=2)
        assert best_route([a, b]) == a

    def test_neighbor_asn_final_tiebreak(self):
        a = mk(neighbor=1, path=(1, 9))
        b = mk(neighbor=2, path=(2, 9))
        assert best_route([a, b]) == a

    def test_mixed_prefixes_rejected(self):
        a = mk()
        b = Route(prefix=Q, as_path=(2, 9), neighbor=2)
        with pytest.raises(ValueError):
            best_route([a, b])


class TestRankAndCompare:
    def test_rank_orders_best_first(self):
        best = mk(neighbor=1, path=(1, 9), lp=120)
        mid = mk(neighbor=2, path=(2, 9), lp=100)
        worst = mk(neighbor=3, path=(3, 5, 9), lp=100)
        assert rank([worst, best, mid]) == [best, mid, worst]

    def test_rank_is_permutation(self):
        routes = [mk(neighbor=i, path=(i, 9), rid=i) for i in range(1, 6)]
        assert sorted(map(id, rank(routes))) == sorted(map(id, routes))

    def test_compare_consistent_with_best(self):
        a = mk(neighbor=1, lp=120)
        b = mk(neighbor=2, lp=100)
        assert compare(a, b) == 1
        assert compare(b, a) == -1

    def test_compare_self_positive_by_identity(self):
        a = mk()
        assert compare(a, a) == 0

    def test_total_preference_sort_key(self):
        routes = [mk(neighbor=i, path=(i, 9), lp=100 + i, rid=i)
                  for i in range(1, 5)]
        best_first = sorted(routes, key=total_preference, reverse=True)
        assert best_first[0] == best_route(routes)


@st.composite
def candidate_sets(draw):
    n = draw(st.integers(1, 6))
    routes = []
    for i in range(n):
        path_tail = draw(st.lists(st.integers(100, 200), min_size=0,
                                  max_size=4, unique=True))
        neighbor = i + 1
        routes.append(Route(
            prefix=P, as_path=tuple([neighbor] + path_tail),
            neighbor=neighbor,
            local_pref=draw(st.integers(80, 120)),
            med=draw(st.integers(0, 10)),
            origin=draw(st.sampled_from(list(Origin))),
            router_id=draw(st.integers(0, 5)),
        ))
    return routes


class TestDecisionProperties:
    @given(candidate_sets())
    def test_winner_is_a_candidate(self, routes):
        assert best_route(routes) in routes

    @given(candidate_sets())
    def test_winner_has_maximal_local_pref(self, routes):
        winner = best_route(routes)
        assert winner.local_pref == max(r.local_pref for r in routes)

    @given(candidate_sets())
    def test_deterministic(self, routes):
        assert best_route(routes) == best_route(list(reversed(routes)))

    @given(candidate_sets())
    def test_rank_head_is_best(self, routes):
        assert rank(routes)[0] == best_route(routes)

    @given(candidate_sets())
    def test_removal_of_winner_promotes_second(self, routes):
        ordered = rank(routes)
        if len(ordered) > 1:
            rest = list(routes)
            rest.remove(ordered[0])
            assert best_route(rest) == ordered[1]
