"""Coverage for the UPDATE message helpers and community utilities."""

import pytest

from repro.bgp.communities import NO_EXPORT, community, encode_community, \
    format_community, parse_community
from repro.bgp.messages import Announce, Withdraw, route_of, update_prefix
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route

P = Prefix.parse("203.0.113.0/24")
ROUTE = Route(prefix=P, as_path=(1, 9), neighbor=1)


class TestMessages:
    def test_announce_fields(self):
        msg = Announce(sender=1, receiver=5, route=ROUTE)
        assert msg.prefix == P
        assert update_prefix(msg) == P
        assert route_of(msg) == ROUTE

    def test_withdraw_fields(self):
        msg = Withdraw(sender=1, receiver=5, prefix=P)
        assert update_prefix(msg) == P
        assert route_of(msg) is None

    def test_wire_sizes_include_header(self):
        announce = Announce(sender=1, receiver=5, route=ROUTE)
        withdraw = Withdraw(sender=1, receiver=5, prefix=P)
        assert announce.wire_size() == 23 + len(ROUTE.to_bytes())
        assert withdraw.wire_size() == 28

    def test_str_representations(self):
        assert "ANNOUNCE 1->5" in str(Announce(sender=1, receiver=5,
                                               route=ROUTE))
        assert "WITHDRAW 1->5" in str(Withdraw(sender=1, receiver=5,
                                               prefix=P))


class TestCommunities:
    def test_community_validation(self):
        assert community(65001, 80) == (65001, 80)
        with pytest.raises(ValueError):
            community(70000, 0)
        with pytest.raises(ValueError):
            community(0, 70000)

    def test_parse_and_format_roundtrip(self):
        tag = parse_community("65001:80")
        assert tag == (65001, 80)
        assert format_community(tag) == "65001:80"

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_community("no-colon")
        with pytest.raises(ValueError):
            parse_community("a:b")

    def test_encode_is_four_bytes_big_endian(self):
        assert encode_community((0x1234, 0x5678)) == \
            b"\x12\x34\x56\x78"

    def test_well_known_values(self):
        assert NO_EXPORT == (0xFFFF, 0xFF01)
