"""Tests for IPv4 prefixes, including the MTT bit-path mapping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.prefix import MAX_PREFIX_LEN, Prefix, PrefixError


def bits_strategy():
    return st.lists(st.integers(0, 1), max_size=MAX_PREFIX_LEN).map(tuple)


class TestParse:
    def test_parse_basic(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.address == 10 << 24
        assert p.length == 8

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("1.2.3.4").length == 32

    def test_parse_default_route(self):
        p = Prefix.parse("0.0.0.0/0")
        assert (p.address, p.length) == (0, 0)

    def test_str_round_trip(self):
        for text in ["0.0.0.0/0", "10.0.0.0/8", "192.168.1.0/24",
                     "128.0.0.0/1", "255.255.255.255/32"]:
            assert str(Prefix.parse(text)) == text

    @pytest.mark.parametrize("bad", [
        "10.0.0/8", "10.0.0.0.0/8", "256.0.0.0/8", "10.0.0.0/33",
        "10.0.0.0/-1", "a.b.c.d/8", "10.0.0.0/x",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(PrefixError):
            Prefix.parse(bad)

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/8")

    def test_rejects_out_of_range_fields(self):
        with pytest.raises(PrefixError):
            Prefix(address=1 << 32, length=32)
        with pytest.raises(PrefixError):
            Prefix(address=0, length=33)


class TestBits:
    def test_paper_figure4_prefixes(self):
        # Figure 4 uses 0/2, 160/3 and 128/1; 160.0.0.0/3 is 101 in base 2.
        assert Prefix.parse("0.0.0.0/2").bits() == (0, 0)
        assert Prefix.parse("160.0.0.0/3").bits() == (1, 0, 1)
        assert Prefix.parse("128.0.0.0/1").bits() == (1,)

    def test_bits_roundtrip_known(self):
        p = Prefix.parse("192.168.0.0/16")
        assert Prefix.from_bits(p.bits()) == p

    @given(bits_strategy())
    def test_bits_roundtrip_property(self, bits):
        assert Prefix.from_bits(bits).bits() == bits

    def test_from_bits_rejects_bad_bit(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits((0, 2))

    def test_from_bits_rejects_too_long(self):
        with pytest.raises(PrefixError):
            Prefix.from_bits((0,) * 33)

    def test_iter_bits_matches_bits(self):
        p = Prefix.parse("160.0.0.0/3")
        assert tuple(p.iter_bits()) == p.bits()


class TestContainment:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(
            Prefix.parse("10.1.0.0/16"))

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("10.1.0.0/16").contains(
            Prefix.parse("10.0.0.0/8"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)

    def test_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(
            Prefix.parse("11.0.0.0/8"))

    def test_default_contains_everything(self):
        default = Prefix.parse("0.0.0.0/0")
        assert default.contains(Prefix.parse("203.0.113.0/24"))

    def test_parent(self):
        assert Prefix.parse("10.0.0.0/8").parent() == \
            Prefix.parse("10.0.0.0/7")
        assert Prefix.parse("128.0.0.0/1").parent() == \
            Prefix.parse("0.0.0.0/0")

    def test_parent_clears_freed_bit(self):
        # 1.0.0.0/8 -> /7 must clear the 8th bit: 0.0.0.0/7.
        assert Prefix.parse("1.0.0.0/8").parent() == \
            Prefix.parse("0.0.0.0/7")

    def test_default_has_no_parent(self):
        with pytest.raises(PrefixError):
            Prefix.parse("0.0.0.0/0").parent()

    @given(bits_strategy().filter(lambda b: len(b) > 0))
    def test_parent_contains_child_property(self, bits):
        child = Prefix.from_bits(bits)
        assert child.parent().contains(child)


class TestEncoding:
    @given(bits_strategy())
    def test_bytes_roundtrip(self, bits):
        p = Prefix.from_bits(bits)
        assert Prefix.from_bytes(p.to_bytes()) == p

    def test_encoding_is_5_bytes(self):
        assert len(Prefix.parse("10.0.0.0/8").to_bytes()) == 5

    def test_from_bytes_rejects_wrong_length(self):
        with pytest.raises(PrefixError):
            Prefix.from_bytes(b"1234")


class TestOrdering:
    def test_sortable(self):
        ps = [Prefix.parse(t) for t in
              ["10.0.0.0/8", "0.0.0.0/0", "10.0.0.0/16"]]
        assert [str(p) for p in sorted(ps)] == \
            ["0.0.0.0/0", "10.0.0.0/8", "10.0.0.0/16"]

    def test_hashable_value_semantics(self):
        assert len({Prefix.parse("10.0.0.0/8"),
                    Prefix.parse("10.0.0.0/8")}) == 1
