"""Tests for routes, the null route, and canonical route encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.communities import NO_EXPORT, community
from repro.bgp.prefix import Prefix
from repro.bgp.route import DEFAULT_LOCAL_PREF, NULL_ROUTE, NullRoute, \
    Origin, Route, originate

P = Prefix.parse("203.0.113.0/24")


def route_strategy():
    prefixes = st.lists(st.integers(0, 1), max_size=32).map(
        lambda bits: Prefix.from_bits(tuple(bits)))
    paths = st.lists(st.integers(1, 65000), min_size=0, max_size=8,
                     unique=True).map(tuple)
    comms = st.frozensets(
        st.tuples(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF)),
        max_size=4)
    return st.builds(
        Route, prefix=prefixes, as_path=paths,
        neighbor=st.integers(0, 65000),
        local_pref=st.integers(-100, 1000),
        med=st.integers(0, 2**31 - 1),
        origin=st.sampled_from(list(Origin)),
        communities=comms,
        router_id=st.integers(0, 2**31 - 1),
    )


class TestNullRoute:
    def test_singleton(self):
        assert NullRoute() is NULL_ROUTE

    def test_falsy(self):
        assert not NULL_ROUTE

    def test_repr(self):
        assert repr(NULL_ROUTE) == "⊥"

    def test_distinct_encoding(self):
        assert NULL_ROUTE.to_bytes() != originate(P, 65001).to_bytes()


class TestRoute:
    def test_path_length_and_origin_as(self):
        r = Route(prefix=P, as_path=(3, 2, 1))
        assert r.path_length == 3
        assert r.origin_as == 1

    def test_empty_path_origin_as_is_none(self):
        assert Route(prefix=P, as_path=()).origin_as is None

    def test_loop_rejected_at_construction(self):
        with pytest.raises(ValueError):
            Route(prefix=P, as_path=(1, 2, 1))

    def test_traverses(self):
        r = Route(prefix=P, as_path=(3, 2, 1))
        assert r.traverses(2)
        assert not r.traverses(9)

    def test_prepended_grows_path_and_resets_local_attrs(self):
        r = Route(prefix=P, as_path=(2, 1), local_pref=200, med=50)
        exported = r.prepended(3)
        assert exported.as_path == (3, 2, 1)
        assert exported.local_pref == DEFAULT_LOCAL_PREF
        assert exported.med == 0

    def test_prepended_rejects_loop(self):
        with pytest.raises(ValueError):
            Route(prefix=P, as_path=(2, 1)).prepended(1)

    def test_community_evolution(self):
        tag = community(65001, 80)
        r = Route(prefix=P, as_path=(1,)).with_communities(tag, NO_EXPORT)
        assert tag in r.communities and NO_EXPORT in r.communities
        r2 = r.without_communities(NO_EXPORT)
        assert NO_EXPORT not in r2.communities and tag in r2.communities

    def test_with_local_pref_is_pure(self):
        r = Route(prefix=P, as_path=(1,))
        r2 = r.with_local_pref(80)
        assert r.local_pref == DEFAULT_LOCAL_PREF
        assert r2.local_pref == 80

    def test_originate_helper(self):
        r = originate(P, 65001)
        assert r.as_path == (65001,)
        assert r.neighbor == 0
        assert r.origin is Origin.IGP

    def test_str_is_informative(self):
        text = str(Route(prefix=P, as_path=(3, 2, 1), local_pref=120))
        assert "203.0.113.0/24" in text and "3 2 1" in text


class TestEncoding:
    def test_known_roundtrip(self):
        r = Route(prefix=P, as_path=(3, 2, 1), neighbor=3, local_pref=120,
                  med=10, origin=Origin.EGP,
                  communities=frozenset({community(65001, 80)}),
                  router_id=7)
        decoded = Route.from_bytes(r.to_bytes(), neighbor=3)
        assert decoded == r

    @given(route_strategy())
    def test_roundtrip_property(self, r):
        assert Route.from_bytes(r.to_bytes(), neighbor=r.neighbor) == r

    @given(route_strategy(), route_strategy())
    def test_encoding_injective(self, a, b):
        # Canonical encoding must distinguish routes that differ in any
        # attribute except the receiver-local neighbor field.
        if a.to_bytes() == b.to_bytes():
            assert a == b or \
                a == Route.from_bytes(b.to_bytes(), neighbor=a.neighbor)

    def test_trailing_garbage_rejected(self):
        data = Route(prefix=P, as_path=(1,)).to_bytes() + b"x"
        with pytest.raises(ValueError):
            Route.from_bytes(data)

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            Route.from_bytes(b"\x00")

    @given(route_strategy(), st.data())
    def test_every_truncation_raises_value_error(self, r, data):
        """Cutting a valid encoding anywhere must fail as ValueError —
        never IndexError (regression: truncating just before the origin
        byte used to index past the end) and never a silent misparse
        from a short slice decoding as a smaller integer."""
        encoded = r.to_bytes()
        cut = data.draw(st.integers(0, len(encoded) - 1))
        with pytest.raises(ValueError):
            Route.from_bytes(encoded[:cut])
