"""Transport implementations: loopback determinism, real TCP, and the
simulator adapter's equivalence with the legacy deployment closure."""

import pytest

from repro.bgp.prefix import Prefix
from repro.netsim.network import Network, TraceEvent
from repro.netsim.topology import figure5_topology
from repro.runtime.scenario import ASN_A, ASN_B, run_loopback_exchange
from repro.runtime.simadapter import SimTransport, sim_transport_factory
from repro.runtime.tcp import TcpTransport
from repro.runtime.transport import LoopbackHub, TransportError
from repro.spider.config import SpiderConfig
from repro.spider.node import SPIDER_TRAFFIC, SpiderDeployment, \
    evaluation_scheme
from repro.spider.wire import SpiderAnnounce


class TestLoopbackExchange:
    """The canonical exchange over the in-process hub — the baseline
    every other transport must reproduce byte for byte."""

    @pytest.fixture(scope="class")
    def summaries(self):
        return run_loopback_exchange()

    def test_logs_are_deterministic_across_runs(self, summaries):
        again = run_loopback_exchange()
        assert summaries[0]["log_hex"] == again[0]["log_hex"]
        assert summaries[1]["log_hex"] == again[1]["log_hex"]

    def test_commitment_roots_cross_agree(self, summaries):
        summary_a, summary_b = summaries
        assert summary_a["peer_root"] == summary_b["own_root"]
        assert summary_b["peer_root"] == summary_a["own_root"]

    def test_no_alarms_in_clean_exchange(self, summaries):
        assert summaries[0]["alarms"] == []
        assert summaries[1]["alarms"] == []

    def test_frames_were_counted(self):
        hub = LoopbackHub()
        summaries = run_loopback_exchange(hub)
        assert summaries[0]["entries"] > 0
        # announce + ack + two commitments crossed the hub
        endpoints = hub.endpoints
        sent = sum(t.frames_sent for t in endpoints.values())
        received = sum(t.frames_received for t in endpoints.values())
        assert sent == received == 4


class TestLoopbackHub:
    def test_latency_ordering_is_seed_deterministic(self):
        """With random latencies, delivery *order* is a pure function
        of the seed."""

        def delivery_order(seed):
            hub = LoopbackHub(seed=seed, min_latency=0.0,
                              max_latency=0.5)
            order = []
            t_a = hub.attach(1)
            hub.attach(2).on_receive(lambda m: order.append(("b", m)))
            hub.attach(3).on_receive(lambda m: order.append(("c", m)))
            for i in range(6):
                t_a.send(2 if i % 2 else 3, _announce_stub(i))
            hub.deliver_all()
            return [(who, m.timestamp) for who, m in order]

        first = delivery_order(42)
        assert delivery_order(42) == first
        assert delivery_order(43) != first

    def test_drop_filter_counts(self):
        hub = LoopbackHub(drop_filter=lambda s, r, m: True)
        sink = []
        t_a = hub.attach(1)
        hub.attach(2).on_receive(sink.append)
        t_a.send(2, _announce_stub(0))
        hub.deliver_all()
        assert sink == []
        assert hub.frames_dropped == 1

    def test_unknown_receiver_rejected(self):
        hub = LoopbackHub()
        t_a = hub.attach(1)
        with pytest.raises(TransportError):
            t_a.send(99, _announce_stub(0))


class TestTcpSmoke:
    """Localhost TCP with both endpoints in one process: frames survive
    the real socket path (encode → kernel → decode → dispatch)."""

    def test_message_crosses_a_real_socket(self):
        received = []
        server = TcpTransport(2)
        server.on_receive(received.append)
        server.start()
        client = TcpTransport(1, peers={2: ("127.0.0.1", server.port)})
        client.start()
        try:
            message = _announce_stub(3)
            client.send(2, message)
            _wait_until(lambda: received, timeout=10.0)
            assert received[0] == message
            assert client.frames_sent == 1
            assert server.frames_received == 1
        finally:
            client.stop()
            server.stop()

    def test_send_to_unknown_peer_raises(self):
        transport = TcpTransport(1)
        transport.start()
        try:
            with pytest.raises(TransportError):
                transport.send(99, _announce_stub(0))
        finally:
            transport.stop()

    def test_send_before_start_raises(self):
        transport = TcpTransport(1, peers={2: ("127.0.0.1", 1)})
        with pytest.raises(TransportError):
            transport.send(2, _announce_stub(0))

    def test_frames_arriving_before_receiver_are_buffered(self):
        """A peer can deliver while this side is still setting up (key
        generation in a fresh process); early frames must wait for
        on_receive, not vanish — dropping one deadlocks the exchange."""
        server = TcpTransport(2)
        server.start()
        client = TcpTransport(1, peers={2: ("127.0.0.1", server.port)})
        client.start()
        try:
            message = _announce_stub(5)
            client.send(2, message)
            _wait_until(lambda: server.frames_received, timeout=10.0)
            received = []
            server.on_receive(received.append)  # registered *after*
            assert received == [message]
        finally:
            client.stop()
            server.stop()


class TestSimAdapterEquivalence:
    """SpiderDeployment over SimTransport must behave exactly like the
    legacy closure: same commitment roots, same metered traffic."""

    P = Prefix.parse("198.51.100.0/24")

    def run_deployment(self, transport_factory=None):
        network = Network(figure5_topology())
        deployment = SpiderDeployment(
            network, scheme=evaluation_scheme(6),
            config=SpiderConfig(commit_interval=60.0),
            transport_factory=transport_factory)
        network.attach_feed(2, feed_asn=65000)
        network.schedule_trace(65000, [
            TraceEvent(1.0, self.P, (65000, 4000)),
        ])
        deployment.start(until=65.0)
        network.run_until(70.0)
        return network, deployment

    @pytest.fixture(scope="class")
    def pair(self):
        baseline = self.run_deployment()
        adapted = self.run_deployment(sim_transport_factory)
        return baseline, adapted

    def test_commitment_roots_identical(self, pair):
        (_, base_dep), (_, sim_dep) = pair
        for asn, node in base_dep.nodes.items():
            base_roots = [c.root for c in node.recorder.commitments]
            sim_roots = [c.root for c in
                         sim_dep.nodes[asn].recorder.commitments]
            assert base_roots == sim_roots, f"AS {asn} roots diverge"

    def test_metered_traffic_identical(self, pair):
        (base_net, _), (sim_net, _) = pair
        for asn in base_net.meters:
            assert base_net.meter(asn).total(SPIDER_TRAFFIC) == \
                sim_net.meter(asn).total(SPIDER_TRAFFIC), \
                f"AS {asn} SPIDeR bytes diverge"

    def test_adapter_reports_honest_frame_bytes(self, pair):
        _, (_, sim_dep) = pair
        transports = [node.recorder.transport
                      for node in sim_dep.nodes.values()]
        assert all(isinstance(t, SimTransport) for t in transports)
        active = [t for t in transports if t.frames_sent]
        assert active, "no SPIDeR traffic crossed the adapter"
        for transport in active:
            assert transport.frame_bytes == transport.bytes_sent > 0


# ----------------------------------------------------------------------

def _announce_stub(i):
    """A structurally valid (unsigned) announce for transport tests."""
    from repro.bgp.route import Route
    from repro.crypto.signatures import Signed
    route = Route(prefix=Prefix.parse("192.0.2.0/24"),
                  as_path=(1, 4000), neighbor=4000)
    envelope = Signed(signer=1, payload=b"p", signature=b"s")
    return SpiderAnnounce(sender=1, receiver=2, timestamp=float(i),
                          route=route, underlying=None,
                          route_sig=envelope, envelope=envelope)


def _wait_until(predicate, timeout):
    import time
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("condition not met in time")
        time.sleep(0.01)


class TestSendMany:
    """Batched egress must be indistinguishable from N single sends on
    the receive side: same messages, same order, same frame counts."""

    def test_loopback_batch_delivers_in_order(self):
        hub = LoopbackHub()
        t_a = hub.attach(1)
        received = []
        hub.attach(2).on_receive(received.append)
        batch = [_announce_stub(i) for i in range(5)]
        t_a.send_many(2, batch)
        hub.deliver_all()
        assert received == batch
        assert t_a.frames_sent == 5
        assert hub.endpoints[2].frames_received == 5

    def test_loopback_batch_matches_singles_byte_for_byte(self):
        """The batched hub path must meter exactly the same bytes as
        five individual sends."""
        batch = [_announce_stub(i) for i in range(5)]

        def totals(send):
            hub = LoopbackHub()
            t_a = hub.attach(1)
            hub.attach(2).on_receive(lambda m: None)
            send(t_a, batch)
            hub.deliver_all()
            return (t_a.bytes_sent, hub.endpoints[2].bytes_received)

        def singles(t, ms):
            for m in ms:
                t.send(2, m)

        assert totals(lambda t, ms: t.send_many(2, ms)) == \
            totals(singles)

    def test_loopback_drop_filter_is_per_message(self):
        hub = LoopbackHub(drop_filter=lambda s, r, m:
                          int(m.timestamp) % 2 == 0)
        t_a = hub.attach(1)
        received = []
        hub.attach(2).on_receive(received.append)
        t_a.send_many(2, [_announce_stub(i) for i in range(4)])
        hub.deliver_all()
        assert [m.timestamp for m in received] == [1.0, 3.0]
        assert hub.frames_dropped == 2

    def test_empty_batch_is_a_no_op(self):
        hub = LoopbackHub()
        t_a = hub.attach(1)
        received = []
        hub.attach(2).on_receive(received.append)
        t_a.send_many(2, [])
        hub.deliver_all()
        assert received == []
        assert t_a.frames_sent == 0

    def test_loopback_unknown_receiver_rejected(self):
        hub = LoopbackHub()
        t_a = hub.attach(1)
        with pytest.raises(TransportError):
            t_a.send_many(99, [_announce_stub(0)])

    def test_tcp_batch_crosses_a_real_socket(self):
        received = []
        server = TcpTransport(2)
        server.on_receive(received.append)
        server.start()
        client = TcpTransport(1, peers={2: ("127.0.0.1", server.port)})
        client.start()
        try:
            batch = [_announce_stub(i) for i in range(8)]
            client.send_many(2, batch)
            _wait_until(lambda: len(received) >= 8, timeout=10.0)
            assert received == batch
            assert client.frames_sent == 8
            assert server.frames_received == 8
        finally:
            client.stop()
            server.stop()

    def test_tcp_send_many_before_start_raises(self):
        transport = TcpTransport(1, peers={2: ("127.0.0.1", 1)})
        with pytest.raises(TransportError):
            transport.send_many(2, [_announce_stub(0)])

    def test_tcp_send_many_unknown_peer_raises(self):
        transport = TcpTransport(1)
        transport.start()
        try:
            with pytest.raises(TransportError):
                transport.send_many(99, [_announce_stub(0)])
        finally:
            transport.stop()
