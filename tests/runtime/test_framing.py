"""Frame encoding and incremental stream reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.framing import FrameDecoder, FramingError, \
    LENGTH_BYTES, MAX_FRAME_SIZE, encode_frame, encode_frames


class TestEncodeFrame:
    def test_layout(self):
        assert encode_frame(b"abc") == b"\x00\x00\x00\x03abc"

    def test_empty_payload_allowed(self):
        assert encode_frame(b"") == b"\x00\x00\x00\x00"

    def test_oversized_payload_rejected(self):
        with pytest.raises(FramingError):
            encode_frame(b"x" * (MAX_FRAME_SIZE + 1))


class TestFrameDecoder:
    def test_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
        assert decoder.buffered == 0

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(FramingError):
            decoder.feed((17).to_bytes(LENGTH_BYTES, "big"))

    def test_partial_then_complete(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"split me")
        assert decoder.feed(frame[:3]) == []
        assert decoder.buffered == 3
        assert decoder.feed(frame[3:]) == [b"split me"]

    def test_framing_error_poisons_decoder(self):
        """A framing violation is unrecoverable: the decoder marks
        itself dead and every later feed says so explicitly (regression:
        the oversized prefix used to stay buffered, so later feeds
        re-raised the original error as if the *new* chunk were bad)."""
        decoder = FrameDecoder(max_frame=16)
        assert not decoder.poisoned
        with pytest.raises(FramingError):
            decoder.feed((17).to_bytes(LENGTH_BYTES, "big"))
        assert decoder.poisoned
        with pytest.raises(FramingError, match="poisoned"):
            decoder.feed(encode_frame(b"perfectly valid"))

    def test_poisoned_decoder_rejects_even_empty_feed(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(FramingError):
            decoder.feed((17).to_bytes(LENGTH_BYTES, "big"))
        with pytest.raises(FramingError, match="poisoned"):
            decoder.feed(b"")

    def test_fresh_decoder_is_not_poisoned_by_sibling(self):
        bad = FrameDecoder(max_frame=16)
        with pytest.raises(FramingError):
            bad.feed((17).to_bytes(LENGTH_BYTES, "big"))
        fresh = FrameDecoder(max_frame=16)
        assert fresh.feed(encode_frame(b"ok")) == [b"ok"]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=8),
           st.data())
    def test_any_chunking_reassembles(self, payloads, data):
        """However the byte stream is sliced, the same frames come out
        in the same order."""
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        pos = 0
        while pos < len(stream):
            step = data.draw(st.integers(1, len(stream) - pos))
            out += decoder.feed(stream[pos:pos + step])
            pos += step
        assert out == payloads
        assert decoder.buffered == 0


class TestEncodeFrames:
    """The writev-style batch path must be byte-equivalent to N single
    encodes — the receiver cannot tell how the sender batched."""

    def test_equivalent_to_concatenated_singles(self):
        payloads = [b"", b"a", b"bc" * 20, b"\x00" * 7]
        assert encode_frames(payloads) == \
            b"".join(encode_frame(p) for p in payloads)

    def test_empty_batch_is_empty_bytes(self):
        assert encode_frames([]) == b""

    def test_oversized_member_rejected(self):
        with pytest.raises(FramingError):
            encode_frames([b"ok", b"x" * (MAX_FRAME_SIZE + 1)])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=8),
           st.data())
    def test_batched_stream_is_chunking_invariant(self, payloads, data):
        """A batch-encoded stream reassembles to the same payloads
        under any slicing, exactly like a singly-encoded one."""
        stream = encode_frames(payloads)
        decoder = FrameDecoder()
        out = []
        pos = 0
        while pos < len(stream):
            step = data.draw(st.integers(1, len(stream) - pos))
            out += decoder.feed(stream[pos:pos + step])
            pos += step
        assert out == payloads
        assert decoder.buffered == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(max_size=32), max_size=6), st.data())
    def test_corrupt_length_prefix_poisons_under_any_chunking(
            self, payloads, data):
        """Wherever the chunk boundaries fall, an oversized length
        prefix raises once its four bytes are complete, the frames
        decoded before it form a prefix of the batch, and the decoder
        is dead for good."""
        stream = encode_frames(payloads) + \
            (MAX_FRAME_SIZE + 1).to_bytes(LENGTH_BYTES, "big") + \
            b"junk after the corruption"
        decoder = FrameDecoder()
        out = []
        pos = 0
        raised = False
        while pos < len(stream):
            step = data.draw(st.integers(1, len(stream) - pos))
            try:
                out += decoder.feed(stream[pos:pos + step])
            except FramingError:
                raised = True
                break
            pos += step
        assert raised
        assert decoder.poisoned
        assert out == payloads[:len(out)]
        with pytest.raises(FramingError, match="poisoned"):
            decoder.feed(b"")


class TestZeroCopyFeed:
    def test_intra_chunk_frames_are_views(self):
        """Frames lying wholly inside one chunk come back as
        memoryviews into it — the zero-copy contract."""
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frames([b"one", b"two"]))
        assert [bytes(f) for f in frames] == [b"one", b"two"]
        assert all(isinstance(f, memoryview) for f in frames)

    def test_views_compare_equal_to_bytes(self):
        decoder = FrameDecoder()
        (frame,) = decoder.feed(encode_frame(b"payload"))
        assert frame == b"payload"

    def test_straddling_frame_is_materialized_bytes(self):
        """The one frame split across feeds is copied out — it must
        not alias the decoder's residual buffer, which mutates."""
        decoder = FrameDecoder()
        encoded = encode_frame(b"split across feeds")
        assert decoder.feed(encoded[:7]) == []
        (frame,) = decoder.feed(encoded[7:])
        assert frame == b"split across feeds"
        assert isinstance(frame, bytes)

    def test_compact_trims_consumed_residual(self):
        decoder = FrameDecoder()
        encoded = encode_frame(b"x" * 32)
        decoder.feed(encoded[:10])
        decoder.feed(encoded[10:])
        # The straddler was emitted; its bytes linger, consumed, in
        # the residual until trimmed.
        assert decoder.buffered == 0
        assert len(decoder._buffer) == len(encoded)
        decoder.compact()
        assert len(decoder._buffer) == 0
        assert decoder.feed(encode_frame(b"next")) == [b"next"]

    def test_compact_threshold_bounds_residual_memory(self):
        """A stream chunked so every frame straddles must not grow the
        residual without bound: once the consumed prefix crosses the
        threshold, the decoder trims it on its own."""
        frame = encode_frame(b"y" * 10)
        decoder = FrameDecoder(compact_threshold=32)
        out = []
        # Half a frame, then full-frame-sized chunks: every chunk
        # completes one straddler and starts the next.
        out += decoder.feed(frame[:7])
        high_water = 0
        for _ in range(40):
            out += decoder.feed(frame[7:] + frame[:7])
            high_water = max(high_water, len(decoder._buffer))
        assert all(f == b"y" * 10 for f in out)
        assert len(out) == 40
        assert high_water <= 32 + 2 * len(frame)
