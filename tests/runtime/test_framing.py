"""Frame encoding and incremental stream reassembly."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.framing import FrameDecoder, FramingError, \
    LENGTH_BYTES, MAX_FRAME_SIZE, encode_frame


class TestEncodeFrame:
    def test_layout(self):
        assert encode_frame(b"abc") == b"\x00\x00\x00\x03abc"

    def test_empty_payload_allowed(self):
        assert encode_frame(b"") == b"\x00\x00\x00\x00"

    def test_oversized_payload_rejected(self):
        with pytest.raises(FramingError):
            encode_frame(b"x" * (MAX_FRAME_SIZE + 1))


class TestFrameDecoder:
    def test_single_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
        assert decoder.buffered == 0

    def test_oversized_length_prefix_rejected(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(FramingError):
            decoder.feed((17).to_bytes(LENGTH_BYTES, "big"))

    def test_partial_then_complete(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"split me")
        assert decoder.feed(frame[:3]) == []
        assert decoder.buffered == 3
        assert decoder.feed(frame[3:]) == [b"split me"]

    def test_framing_error_poisons_decoder(self):
        """A framing violation is unrecoverable: the decoder marks
        itself dead and every later feed says so explicitly (regression:
        the oversized prefix used to stay buffered, so later feeds
        re-raised the original error as if the *new* chunk were bad)."""
        decoder = FrameDecoder(max_frame=16)
        assert not decoder.poisoned
        with pytest.raises(FramingError):
            decoder.feed((17).to_bytes(LENGTH_BYTES, "big"))
        assert decoder.poisoned
        with pytest.raises(FramingError, match="poisoned"):
            decoder.feed(encode_frame(b"perfectly valid"))

    def test_poisoned_decoder_rejects_even_empty_feed(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(FramingError):
            decoder.feed((17).to_bytes(LENGTH_BYTES, "big"))
        with pytest.raises(FramingError, match="poisoned"):
            decoder.feed(b"")

    def test_fresh_decoder_is_not_poisoned_by_sibling(self):
        bad = FrameDecoder(max_frame=16)
        with pytest.raises(FramingError):
            bad.feed((17).to_bytes(LENGTH_BYTES, "big"))
        fresh = FrameDecoder(max_frame=16)
        assert fresh.feed(encode_frame(b"ok")) == [b"ok"]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=8),
           st.data())
    def test_any_chunking_reassembles(self, payloads, data):
        """However the byte stream is sliced, the same frames come out
        in the same order."""
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        pos = 0
        while pos < len(stream):
            step = data.draw(st.integers(1, len(stream) - pos))
            out += decoder.feed(stream[pos:pos + step])
            pos += step
        assert out == payloads
        assert decoder.buffered == 0
