"""Corruption fuzz over every ``to_bytes``/``from_bytes`` pair.

Coverage is *enumerated, not listed*: the test walks every module under
:mod:`repro` and discovers each class that defines both ``to_bytes``
and ``from_bytes`` (inherited ``int`` methods, as on ``IntEnum``, do
not count).  Each discovered pair must have a hypothesis strategy in
:data:`BYTE_PAIR_STRATEGIES`; adding a new wire type without a strategy
fails the registry test, so new types are fuzzed by construction.  The
same construction pins the frame codec: every class registered in
``repro.runtime.codec`` must have a message strategy here.

The property under fuzz is the decoder contract enforced statically by
lint rule SPDR003: corrupted input (truncated, bit-flipped, extended)
may only ever raise :class:`ValueError` (including its subclasses
``PrefixError``/``CodecError``) — never ``IndexError``,
``struct.error``, or any other foreign exception — and a successful
decode of corrupted bytes never silently yields the original message.
"""

import dataclasses
import importlib
import pkgutil

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.runtime import codec
from repro.runtime.logdump import decode_log_entry, encode_log_entry
from repro.spider.log import EntryKind, LogEntry
from tests.strategies import acks, announces, bit_proofs, commitments, \
    commitment_payloads, prefixes, routes, routing_states, withdraws

# ----------------------------------------------------------------------
# Discovery


def _defines_pair(klass):
    """True when ``klass`` defines to_bytes AND from_bytes in repro code.

    Methods inherited from builtins (``int.to_bytes`` on enums) do not
    make a wire type; only definitions in a repro-owned base count.
    """
    def repro_defined(attr):
        for base in klass.__mro__:
            if attr in vars(base):
                return base.__module__.startswith("repro.")
        return False
    return repro_defined("to_bytes") and repro_defined("from_bytes")


def discover_byte_pairs():
    """Map qualified name -> class for every to_bytes/from_bytes pair."""
    pairs = {}
    for info in pkgutil.walk_packages(repro.__path__, "repro."):
        if info.name.endswith("__main__"):
            continue
        module = importlib.import_module(info.name)
        for obj in vars(module).values():
            if isinstance(obj, type) and obj.__module__ == info.name \
                    and _defines_pair(obj):
                pairs[f"{obj.__module__}.{obj.__qualname__}"] = obj
    return pairs


#: One instance strategy per discovered pair.  ``Route.from_bytes``
#: restores ``neighbor`` as receiver-local state (default 0), so the
#: strategy pins it to keep the round trip exact.
BYTE_PAIR_STRATEGIES = {
    "repro.bgp.prefix.Prefix": prefixes(),
    "repro.bgp.route.Route": routes().map(
        lambda route: dataclasses.replace(route, neighbor=0)),
}

#: One strategy per frame-codec message class (for encode_message /
#: decode_message corruption, complementing tests in
#: test_codec_roundtrip which use a hand-merged strategy).
CODEC_STRATEGIES = {
    "SpiderAnnounce": announces(),
    "SpiderWithdraw": withdraws(),
    "SpiderAck": acks(),
    "SpiderCommitment": commitments(),
    "SpiderBitProof": bit_proofs(),
}


def test_every_byte_pair_has_a_strategy():
    discovered = discover_byte_pairs()
    assert set(discovered) == set(BYTE_PAIR_STRATEGIES), (
        "to_bytes/from_bytes pairs changed; update BYTE_PAIR_STRATEGIES "
        "in this file so the new type is corruption-fuzzed: "
        f"{sorted(set(discovered) ^ set(BYTE_PAIR_STRATEGIES))}")


def test_every_codec_message_has_a_strategy():
    registered = {klass.__name__ for klass, _tag, _enc in codec._ENCODERS}
    assert registered == set(CODEC_STRATEGIES), (
        "codec._ENCODERS changed; update CODEC_STRATEGIES in this file "
        "so the new message type is corruption-fuzzed: "
        f"{sorted(registered ^ set(CODEC_STRATEGIES))}")


# ----------------------------------------------------------------------
# Corruption properties (class-level byte pairs)

_PAIR_PARAMS = sorted(BYTE_PAIR_STRATEGIES)


def _decode(qualified, data):
    module_name, _, class_name = qualified.rpartition(".")
    klass = getattr(importlib.import_module(module_name), class_name)
    return klass.from_bytes(data)


@pytest.mark.parametrize("qualified", _PAIR_PARAMS)
@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_roundtrip_exact(qualified, data):
    obj = data.draw(BYTE_PAIR_STRATEGIES[qualified])
    assert _decode(qualified, obj.to_bytes()) == obj


@pytest.mark.parametrize("qualified", _PAIR_PARAMS)
@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_truncation_raises_valueerror_only(qualified, data):
    encoded = data.draw(BYTE_PAIR_STRATEGIES[qualified]).to_bytes()
    cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
    with pytest.raises(ValueError):
        _decode(qualified, encoded[:cut])


@pytest.mark.parametrize("qualified", _PAIR_PARAMS)
@settings(max_examples=150, deadline=None)
@given(data=st.data())
def test_bitflip_never_misparses(qualified, data):
    obj = data.draw(BYTE_PAIR_STRATEGIES[qualified])
    encoded = bytearray(obj.to_bytes())
    pos = data.draw(st.integers(0, len(encoded) - 1))
    encoded[pos] ^= data.draw(st.integers(1, 255))
    try:
        decoded = _decode(qualified, bytes(encoded))
    except ValueError:
        return  # rejection is the expected outcome
    assert decoded != obj, "corrupted bytes decoded back to the original"


@pytest.mark.parametrize("qualified", _PAIR_PARAMS)
@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_extension_raises_valueerror_only(qualified, data):
    encoded = data.draw(BYTE_PAIR_STRATEGIES[qualified]).to_bytes()
    junk = data.draw(st.binary(min_size=1, max_size=16))
    with pytest.raises(ValueError):
        _decode(qualified, encoded + junk)


# ----------------------------------------------------------------------
# Corruption properties (frame codec, per message type)

_CODEC_PARAMS = sorted(CODEC_STRATEGIES)


@pytest.mark.parametrize("name", _CODEC_PARAMS)
@settings(max_examples=75, deadline=None)
@given(data=st.data())
def test_codec_corruption_per_type(name, data):
    message = data.draw(CODEC_STRATEGIES[name])
    encoded = bytearray(codec.encode_message(message))
    pos = data.draw(st.integers(0, len(encoded) - 1))
    encoded[pos] ^= data.draw(st.integers(1, 255))
    try:
        decoded = codec.decode_message(bytes(encoded))
    except codec.CodecError:
        return
    assert decoded != message


@pytest.mark.parametrize("name", _CODEC_PARAMS)
@settings(max_examples=75, deadline=None)
@given(data=st.data())
def test_codec_truncation_per_type(name, data):
    message = data.draw(CODEC_STRATEGIES[name])
    encoded = codec.encode_message(message)
    cut = data.draw(st.integers(0, len(encoded) - 1))
    with pytest.raises(codec.CodecError):
        codec.decode_message(encoded[:cut])


# ----------------------------------------------------------------------
# Corruption properties (canonical log-entry encoding, per EntryKind)
#
# Same enumerated-coverage construction as above: every EntryKind must
# have a payload strategy (in tests.strategies), so adding a kind
# without extending the durable-store encoding fails the registry test
# here.

ENTRY_STRATEGIES = {
    EntryKind.SENT_ANNOUNCE: announces(),
    EntryKind.RECV_ANNOUNCE: announces(),
    EntryKind.SENT_WITHDRAW: withdraws(),
    EntryKind.RECV_WITHDRAW: withdraws(),
    EntryKind.SENT_ACK: acks(),
    EntryKind.RECV_ACK: acks(),
    EntryKind.COMMITMENT: commitment_payloads(),
    EntryKind.CHECKPOINT: routing_states(),
}

_ENTRY_PARAMS = sorted(ENTRY_STRATEGIES, key=lambda kind: kind.value)

#: Millisecond-grid timestamps (the wire resolution).
_TIMESTAMPS = st.integers(0, 10**10).map(lambda ms: ms / 1000.0)


def _entry(kind, timestamp, payload):
    return LogEntry(index=0, timestamp=timestamp, kind=kind,
                    payload=payload, size_bytes=1,
                    chain=bytes(20))


def test_every_entry_kind_has_a_strategy():
    assert set(ENTRY_STRATEGIES) == set(EntryKind), (
        "EntryKind changed; give the new kind a payload strategy here "
        "so its canonical encoding is corruption-fuzzed")


@pytest.mark.parametrize("kind", _ENTRY_PARAMS,
                         ids=[k.value for k in _ENTRY_PARAMS])
@settings(max_examples=75, deadline=None)
@given(data=st.data())
def test_log_entry_roundtrip_exact(kind, data):
    payload = data.draw(ENTRY_STRATEGIES[kind])
    timestamp = data.draw(_TIMESTAMPS)
    encoded = encode_log_entry(_entry(kind, timestamp, payload))
    assert decode_log_entry(encoded) == (kind, timestamp, payload)


@pytest.mark.parametrize("kind", _ENTRY_PARAMS,
                         ids=[k.value for k in _ENTRY_PARAMS])
@settings(max_examples=75, deadline=None)
@given(data=st.data())
def test_log_entry_truncation_raises(kind, data):
    payload = data.draw(ENTRY_STRATEGIES[kind])
    encoded = encode_log_entry(_entry(kind, data.draw(_TIMESTAMPS),
                                      payload))
    cut = data.draw(st.integers(0, len(encoded) - 1))
    with pytest.raises(codec.CodecError):
        decode_log_entry(encoded[:cut])


@pytest.mark.parametrize("kind", _ENTRY_PARAMS,
                         ids=[k.value for k in _ENTRY_PARAMS])
@settings(max_examples=75, deadline=None)
@given(data=st.data())
def test_log_entry_bitflip_never_misparses(kind, data):
    payload = data.draw(ENTRY_STRATEGIES[kind])
    timestamp = data.draw(_TIMESTAMPS)
    encoded = bytearray(
        encode_log_entry(_entry(kind, timestamp, payload)))
    pos = data.draw(st.integers(0, len(encoded) - 1))
    encoded[pos] ^= data.draw(st.integers(1, 255))
    try:
        decoded = decode_log_entry(bytes(encoded))
    except codec.CodecError:
        return
    assert decoded != (kind, timestamp, payload), (
        "corrupted bytes decoded back to the original entry")
