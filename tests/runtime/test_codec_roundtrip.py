"""Property-based round-trip tests for the binary wire codec.

For every message type: ``decode(encode(m)) == m`` exactly.  And the
strictness properties the codec promises: truncated frames always raise
:class:`CodecError`, and a corrupted frame either raises
:class:`CodecError` or decodes to something *different* — it never
mis-parses back into the original, and never escapes with a foreign
exception type.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.route import Origin, Route
from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.signatures import Signed
from repro.mtt.proofs import MttBitProof, PathStep
from repro.runtime.codec import CodecError, WIRE_VERSION, \
    decode_message, encode_message
from repro.spider.wire import SpiderAck, SpiderAnnounce, SpiderBitProof, \
    SpiderCommitment, SpiderWithdraw

# ----------------------------------------------------------------------
# Strategies (signatures are structurally arbitrary bytes: the codec
# moves envelopes, it does not verify them)

asns = st.integers(min_value=1, max_value=2**32 - 1)
#: Millisecond-grid timestamps, the codec's declared resolution.
timestamps = st.integers(min_value=0, max_value=2**40).map(
    lambda ms: ms / 1000.0)
digests = st.binary(min_size=DIGEST_SIZE, max_size=DIGEST_SIZE)


@st.composite
def prefixes(draw):
    length = draw(st.integers(min_value=0, max_value=32))
    address = draw(st.integers(min_value=0, max_value=2**32 - 1))
    mask = ((1 << length) - 1) << (32 - length) if length else 0
    return Prefix(address=address & mask, length=length)


@st.composite
def routes(draw):
    path = draw(st.lists(asns, min_size=0, max_size=8, unique=True))
    communities = draw(st.frozensets(
        st.tuples(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1)),
        max_size=4))
    return Route(
        prefix=draw(prefixes()),
        as_path=tuple(path),
        neighbor=draw(st.integers(0, 2**32 - 1)),
        local_pref=draw(st.integers(-2**31, 2**31 - 1)),
        med=draw(st.integers(0, 2**32 - 1)),
        origin=draw(st.sampled_from(list(Origin))),
        communities=communities,
        router_id=draw(st.integers(0, 2**32 - 1)),
    )


@st.composite
def signed_envelopes(draw):
    n_batch = draw(st.integers(min_value=0, max_value=3))
    batch = tuple(draw(digests) for _ in range(n_batch))
    index = draw(st.integers(0, n_batch - 1)) if n_batch else 0
    return Signed(
        signer=draw(asns),
        payload=draw(st.binary(max_size=64)),
        signature=draw(st.binary(min_size=1, max_size=128)),
        batch_digests=batch,
        batch_index=index,
    )


@st.composite
def announces(draw):
    return SpiderAnnounce(
        sender=draw(asns), receiver=draw(asns),
        timestamp=draw(timestamps), route=draw(routes()),
        underlying=draw(st.none() | signed_envelopes()),
        route_sig=draw(signed_envelopes()),
        envelope=draw(signed_envelopes()),
        reannounce=draw(st.booleans()),
    )


@st.composite
def withdraws(draw):
    return SpiderWithdraw(
        sender=draw(asns), receiver=draw(asns),
        timestamp=draw(timestamps), prefix=draw(prefixes()),
        envelope=draw(signed_envelopes()),
    )


@st.composite
def acks(draw):
    return SpiderAck(
        acker=draw(asns), sender=draw(asns),
        timestamp=draw(timestamps),
        message_hash=draw(st.binary(max_size=40)),
        envelope=draw(signed_envelopes()),
    )


@st.composite
def commitments(draw):
    return SpiderCommitment(
        elector=draw(asns), commit_time=draw(timestamps),
        root=draw(digests), envelope=draw(signed_envelopes()),
    )


@st.composite
def bit_proofs(draw):
    steps = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        n_children = draw(st.integers(min_value=1, max_value=4))
        steps.append(PathStep(
            child_labels=tuple(draw(digests)
                               for _ in range(n_children)),
            child_index=draw(st.integers(0, n_children - 1)),
        ))
    proof = MttBitProof(
        prefix=draw(prefixes()),
        class_index=draw(st.integers(0, 2**16)),
        bit=draw(st.integers(0, 1)),
        blinding=draw(digests),
        steps=tuple(steps),
    )
    return SpiderBitProof(
        elector=draw(asns), recipient=draw(asns),
        commit_time=draw(timestamps), proof=proof,
        envelope=draw(signed_envelopes()),
    )


messages = st.one_of(announces(), withdraws(), acks(), commitments(),
                     bit_proofs())


# ----------------------------------------------------------------------
# Round trips

@settings(max_examples=150, deadline=None)
@given(messages)
def test_roundtrip_exact(message):
    assert decode_message(encode_message(message)) == message


@settings(max_examples=50, deadline=None)
@given(messages)
def test_encoding_is_deterministic(message):
    assert encode_message(message) == encode_message(message)


# ----------------------------------------------------------------------
# Strictness

@settings(max_examples=100, deadline=None)
@given(messages, st.data())
def test_truncation_always_raises(message, data):
    encoded = encode_message(message)
    cut = data.draw(st.integers(min_value=0,
                                max_value=len(encoded) - 1))
    with pytest.raises(CodecError):
        decode_message(encoded[:cut])


@settings(max_examples=150, deadline=None)
@given(messages, st.data())
def test_corruption_never_misparses(message, data):
    """A flipped byte either raises CodecError or yields a different
    message — and nothing else (no IndexError, struct garbage, ...)."""
    encoded = bytearray(encode_message(message))
    pos = data.draw(st.integers(0, len(encoded) - 1))
    flip = data.draw(st.integers(1, 255))
    encoded[pos] ^= flip
    try:
        decoded = decode_message(bytes(encoded))
    except CodecError:
        return
    assert decoded != message


@settings(max_examples=50, deadline=None)
@given(messages)
def test_trailing_bytes_rejected(message):
    with pytest.raises(CodecError):
        decode_message(encode_message(message) + b"\x00")


def _sample_ack():
    return SpiderAck(acker=1, sender=2, timestamp=3.0,
                     message_hash=b"h" * DIGEST_SIZE,
                     envelope=Signed(signer=1, payload=b"p",
                                     signature=b"s"))


def test_unknown_version_rejected():
    encoded = bytearray(encode_message(_sample_ack()))
    encoded[0] = WIRE_VERSION + 1
    with pytest.raises(CodecError):
        decode_message(bytes(encoded))


def test_unknown_tag_rejected():
    encoded = bytearray(encode_message(_sample_ack()))
    encoded[1] = 0x7F
    with pytest.raises(CodecError):
        decode_message(bytes(encoded))


def test_non_wire_object_rejected():
    with pytest.raises(CodecError):
        encode_message("not a message")


def test_negative_timestamp_rejected_on_encode():
    import dataclasses
    bad = dataclasses.replace(_sample_ack(), timestamp=-1.0)
    with pytest.raises(CodecError):
        encode_message(bad)


# ----------------------------------------------------------------------
# Buffer-type polymorphism (the zero-copy decode path)

@settings(max_examples=60, deadline=None)
@given(messages)
def test_roundtrip_across_buffer_types(message):
    """``decode(encode(m)) == m`` whether the frame arrives as bytes,
    bytearray, or a memoryview — including a non-zero-offset view, the
    shape a batched frame decoder actually hands over."""
    encoded = encode_message(message)
    assert decode_message(encoded) == message
    assert decode_message(bytearray(encoded)) == message
    assert decode_message(memoryview(encoded)) == message
    padded = b"\xff" * 3 + encoded
    assert decode_message(memoryview(padded)[3:]) == message


@settings(max_examples=120, deadline=None)
@given(messages, st.data())
def test_memoryview_corruption_raises_only_codec_error(message, data):
    """Truncate, bit-flip, or extend the frame and decode it through
    the memoryview path: the outcome is CodecError or a *different*
    message — never a mis-parse back to the original, never a foreign
    exception (IndexError, struct.error, ...) escaping the reader."""
    encoded = bytearray(encode_message(message))
    op = data.draw(st.sampled_from(["truncate", "flip", "extend"]))
    if op == "truncate":
        cut = data.draw(st.integers(0, len(encoded) - 1))
        with pytest.raises(CodecError):
            decode_message(memoryview(bytes(encoded[:cut])))
        return
    if op == "extend":
        encoded += data.draw(st.binary(min_size=1, max_size=8))
        with pytest.raises(CodecError):
            decode_message(memoryview(bytes(encoded)))
        return
    pos = data.draw(st.integers(0, len(encoded) - 1))
    encoded[pos] ^= data.draw(st.integers(1, 255))
    try:
        decoded = decode_message(memoryview(bytes(encoded)))
    except CodecError:
        return
    assert decoded != message
