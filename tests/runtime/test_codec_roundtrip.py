"""Property-based round-trip tests for the binary wire codec.

For every message type: ``decode(encode(m)) == m`` exactly.  And the
strictness properties the codec promises: truncated frames always raise
:class:`CodecError`, and a corrupted frame either raises
:class:`CodecError` or decodes to something *different* — it never
mis-parses back into the original, and never escapes with a foreign
exception type.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.signatures import Signed
from repro.runtime.codec import CodecError, WIRE_VERSION, \
    decode_message, encode_message
from repro.spider.wire import SpiderAck

# Message strategies live in the shared suite-wide module so the
# corruption-fuzz and campaign suites draw the exact same shapes.
from tests import strategies

messages = strategies.messages()


# ----------------------------------------------------------------------
# Round trips

@settings(max_examples=150, deadline=None)
@given(messages)
def test_roundtrip_exact(message):
    assert decode_message(encode_message(message)) == message


@settings(max_examples=50, deadline=None)
@given(messages)
def test_encoding_is_deterministic(message):
    assert encode_message(message) == encode_message(message)


# ----------------------------------------------------------------------
# Strictness

@settings(max_examples=100, deadline=None)
@given(messages, st.data())
def test_truncation_always_raises(message, data):
    encoded = encode_message(message)
    cut = data.draw(st.integers(min_value=0,
                                max_value=len(encoded) - 1))
    with pytest.raises(CodecError):
        decode_message(encoded[:cut])


@settings(max_examples=150, deadline=None)
@given(messages, st.data())
def test_corruption_never_misparses(message, data):
    """A flipped byte either raises CodecError or yields a different
    message — and nothing else (no IndexError, struct garbage, ...)."""
    encoded = bytearray(encode_message(message))
    pos = data.draw(st.integers(0, len(encoded) - 1))
    flip = data.draw(st.integers(1, 255))
    encoded[pos] ^= flip
    try:
        decoded = decode_message(bytes(encoded))
    except CodecError:
        return
    assert decoded != message


@settings(max_examples=50, deadline=None)
@given(messages)
def test_trailing_bytes_rejected(message):
    with pytest.raises(CodecError):
        decode_message(encode_message(message) + b"\x00")


def _sample_ack():
    return SpiderAck(acker=1, sender=2, timestamp=3.0,
                     message_hash=b"h" * DIGEST_SIZE,
                     envelope=Signed(signer=1, payload=b"p",
                                     signature=b"s"))


def test_unknown_version_rejected():
    encoded = bytearray(encode_message(_sample_ack()))
    encoded[0] = WIRE_VERSION + 1
    with pytest.raises(CodecError):
        decode_message(bytes(encoded))


def test_unknown_tag_rejected():
    encoded = bytearray(encode_message(_sample_ack()))
    encoded[1] = 0x7F
    with pytest.raises(CodecError):
        decode_message(bytes(encoded))


def test_non_wire_object_rejected():
    with pytest.raises(CodecError):
        encode_message("not a message")


def test_negative_timestamp_rejected_on_encode():
    import dataclasses
    bad = dataclasses.replace(_sample_ack(), timestamp=-1.0)
    with pytest.raises(CodecError):
        encode_message(bad)


# ----------------------------------------------------------------------
# Buffer-type polymorphism (the zero-copy decode path)

@settings(max_examples=60, deadline=None)
@given(messages)
def test_roundtrip_across_buffer_types(message):
    """``decode(encode(m)) == m`` whether the frame arrives as bytes,
    bytearray, or a memoryview — including a non-zero-offset view, the
    shape a batched frame decoder actually hands over."""
    encoded = encode_message(message)
    assert decode_message(encoded) == message
    assert decode_message(bytearray(encoded)) == message
    assert decode_message(memoryview(encoded)) == message
    padded = b"\xff" * 3 + encoded
    assert decode_message(memoryview(padded)[3:]) == message


@settings(max_examples=120, deadline=None)
@given(messages, st.data())
def test_memoryview_corruption_raises_only_codec_error(message, data):
    """Truncate, bit-flip, or extend the frame and decode it through
    the memoryview path: the outcome is CodecError or a *different*
    message — never a mis-parse back to the original, never a foreign
    exception (IndexError, struct.error, ...) escaping the reader."""
    encoded = bytearray(encode_message(message))
    op = data.draw(st.sampled_from(["truncate", "flip", "extend"]))
    if op == "truncate":
        cut = data.draw(st.integers(0, len(encoded) - 1))
        with pytest.raises(CodecError):
            decode_message(memoryview(bytes(encoded[:cut])))
        return
    if op == "extend":
        encoded += data.draw(st.binary(min_size=1, max_size=8))
        with pytest.raises(CodecError):
            decode_message(memoryview(bytes(encoded)))
        return
    pos = data.draw(st.integers(0, len(encoded) - 1))
    encoded[pos] ^= data.draw(st.integers(1, 255))
    try:
        decoded = decode_message(memoryview(bytes(encoded)))
    except CodecError:
        return
    assert decoded != message
