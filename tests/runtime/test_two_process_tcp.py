"""The headline acceptance test: one SPIDeR exchange between two real
OS processes over localhost TCP produces evidence logs byte-identical
to the same exchange on the in-process loopback transport."""

import json
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.scenario import ASN_A, ASN_B, run_loopback_exchange

SRC = str(Path(__file__).resolve().parents[2] / "src")


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def run_two_processes():
    port_a, port_b = free_port(), free_port()

    def spawn(role, port, peer_port):
        return subprocess.Popen(
            [sys.executable, "-m", "repro.runtime.scenario",
             "--role", role, "--port", str(port),
             "--peer-port", str(peer_port), "--json"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"}, text=True)

    proc_a = spawn("a", port_a, port_b)
    proc_b = spawn("b", port_b, port_a)
    out_a, err_a = proc_a.communicate(timeout=120)
    out_b, err_b = proc_b.communicate(timeout=120)
    assert proc_a.returncode == 0, f"side A failed:\n{err_a}"
    assert proc_b.returncode == 0, f"side B failed:\n{err_b}"
    return json.loads(out_a), json.loads(out_b)


@pytest.fixture(scope="module")
def tcp_and_loopback():
    tcp = run_two_processes()
    loopback = run_loopback_exchange()
    return tcp, loopback


def test_processes_complete_the_exchange(tcp_and_loopback):
    (tcp_a, tcp_b), _ = tcp_and_loopback
    assert tcp_a["asn"] == ASN_A and tcp_b["asn"] == ASN_B
    assert tcp_a["entries"] > 0 and tcp_b["entries"] > 0
    assert tcp_a["alarms"] == [] and tcp_b["alarms"] == []


def test_commitment_roots_cross_agree_over_tcp(tcp_and_loopback):
    (tcp_a, tcp_b), _ = tcp_and_loopback
    assert tcp_a["peer_root"] == tcp_b["own_root"]
    assert tcp_b["peer_root"] == tcp_a["own_root"]


def test_tcp_logs_byte_identical_to_loopback(tcp_and_loopback):
    """The acceptance criterion: same exchange, two transports, two OS
    processes vs. one — the canonical log bytes must match exactly."""
    (tcp_a, tcp_b), (loop_a, loop_b) = tcp_and_loopback
    assert tcp_a["log_hex"] == loop_a["log_hex"]
    assert tcp_b["log_hex"] == loop_b["log_hex"]


def test_clean_tcp_run_never_retransmits(tcp_and_loopback):
    (tcp_a, tcp_b), _ = tcp_and_loopback
    assert tcp_a["retries"] == 0 and tcp_b["retries"] == 0
