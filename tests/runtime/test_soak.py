"""Many-peer soak smoke: real sockets, one hub runtime, N sessions.

The full scenario (50+ sessions) runs from the benchmark; here a small
population proves the machinery end to end — concurrent sessions,
pre-signed announces through batched frames, recorder-driven ACKs back
to every peer, and the backpressure metrics landing in the registry.
"""

from repro.obs.registry import Registry, use_registry
from repro.runtime.soak import PEER_ASN_BASE, run_soak

SESSIONS = 6
MESSAGES = 4


def test_soak_small_population_round_trips_every_ack():
    with use_registry(Registry()):
        report = run_soak(sessions=SESSIONS,
                          messages_per_session=MESSAGES,
                          burst=3, timeout=30.0)
    assert report["concurrent_sessions_high_water"] == SESSIONS
    assert report["messages_sent"] == SESSIONS * MESSAGES
    assert report["acks_received"] == report["acks_expected"] \
        == SESSIONS * MESSAGES
    assert report["alarms"] == []
    expected_peers = {f"as{PEER_ASN_BASE + i}" for i in range(SESSIONS)}
    assert set(report["per_peer"]) == expected_peers
    for stats in report["per_peer"].values():
        assert stats["messages_sent"] == MESSAGES
        assert stats["acks_received"] == MESSAGES
        # The hub's ACK egress queue for this peer was exercised.
        assert stats["ack_queue_depth_high_water"] >= 1
    # Arrival outran processing at least once: the inbox gauge saw a
    # backlog, which is the point of the soak.
    assert report["inbox_depth_high_water"] >= 1
    assert report["duration_seconds"] > 0


def test_soak_rejects_zero_sessions():
    import pytest
    with pytest.raises(ValueError):
        run_soak(sessions=0)
