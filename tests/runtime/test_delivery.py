"""Retry/backoff delivery and the ACK-or-evidence rule (Section 6.2).

The acceptance scenario: a fault that drops every ACK must first drive
exponential-backoff retransmissions and then, once attempts are
exhausted *and* T_max has elapsed, produce a
:class:`~repro.spider.evidence.MissingAckEvidence` record plus the
recorder alarm the paper requires.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.delivery import RetryPolicy
from repro.runtime.scenario import ASN_A, ASN_B, ROUTE, \
    exchange_runtime, run_loopback_exchange
from repro.runtime.transport import LoopbackHub
from repro.spider.evidence import missing_ack_evidence_valid
from repro.spider.wire import SpiderAck

FAST_RETRY = RetryPolicy(initial=0.5, factor=2.0, max_delay=8.0,
                         jitter=0.1, max_attempts=4)


def drop_acks(_sender, _receiver, message):
    return isinstance(message, SpiderAck)


def run_dropped_ack_scenario():
    """Announce from A to B while the hub eats every ACK."""
    hub = LoopbackHub(drop_filter=drop_acks)
    rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                            retry_policy=FAST_RETRY)
    rt_b = exchange_runtime(ASN_B, hub.attach(ASN_B),
                            retry_policy=FAST_RETRY)

    sends = []
    transport = rt_a.recorder.transport
    rt_a.recorder.transport = lambda receiver, message: (
        sends.append((rt_a.clock.now, message)),
        transport(receiver, message))[-1]

    rt_a.advance_to(1.0)
    rt_a.announce(ASN_B, ROUTE)
    hub.deliver_all()
    rt_b.advance_to(1.0)
    rt_b.deliver_pending()

    t = 1.0
    while not rt_a.delivery.evidence and t < 60.0:
        t += 0.25
        rt_a.advance_to(t)
        rt_b.advance_to(t)
        hub.deliver_all()
        rt_b.deliver_pending()
    return rt_a, rt_b, hub, sends


class TestDroppedAckFault:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_dropped_ack_scenario()

    def test_retries_happened_with_growing_backoff(self, scenario):
        rt_a, _rt_b, _hub, sends = scenario
        assert rt_a.delivery.retries_sent == \
            FAST_RETRY.max_attempts - 1
        send_times = [t for t, _m in sends]
        assert len(send_times) == FAST_RETRY.max_attempts
        gaps = [b - a for a, b in zip(send_times, send_times[1:])]
        # Exponential backoff: every gap strictly exceeds the previous
        # (jitter is ±10%, factor is 2 — the order cannot flip).
        assert all(later > earlier
                   for earlier, later in zip(gaps, gaps[1:]))

    def test_retransmissions_carry_the_same_message(self, scenario):
        _rt_a, _rt_b, _hub, sends = scenario
        hashes = {m.message_hash() for _t, m in sends}
        assert len(hashes) == 1

    def test_evidence_surfaces_after_t_max(self, scenario):
        rt_a, _rt_b, _hub, _sends = scenario
        assert len(rt_a.delivery.evidence) == 1
        evidence = rt_a.delivery.evidence[0]
        assert evidence.accused == ASN_B
        assert evidence.attempts == FAST_RETRY.max_attempts
        assert evidence.gave_up_at - evidence.first_sent >= \
            rt_a.config.ack_timeout
        assert missing_ack_evidence_valid(
            rt_a.node.registry, evidence, rt_a.config.ack_timeout)

    def test_recorder_alarm_raised(self, scenario):
        rt_a, _rt_b, _hub, _sends = scenario
        assert any("no ack from AS12" in alarm
                   for alarm in rt_a.recorder.alarms)

    def test_acks_really_were_dropped(self, scenario):
        _rt_a, _rt_b, hub, _sends = scenario
        assert hub.frames_dropped == FAST_RETRY.max_attempts

    def test_receiver_saw_every_retransmission(self, scenario):
        _rt_a, rt_b, _hub, _sends = scenario
        from repro.spider.log import EntryKind
        received = rt_b.recorder.log.of_kind(EntryKind.RECV_ANNOUNCE)
        assert len(received) == FAST_RETRY.max_attempts


class TestAckCancelsRetry:
    def test_clean_exchange_never_retransmits(self):
        summary_a, summary_b = run_loopback_exchange()
        assert summary_a["retries"] == 0
        assert summary_a["alarms"] == []
        assert summary_b["alarms"] == []


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        import random
        policy = RetryPolicy(initial=1.0, factor=2.0, max_delay=4.0,
                             jitter=0.0, max_attempts=10)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_is_bounded(self):
        import random
        policy = RetryPolicy(initial=1.0, jitter=0.25)
        rng = random.Random(7)
        for n in range(1, 20):
            delay = policy.delay(1, rng)
            assert 0.75 <= delay <= 1.25

    @pytest.mark.parametrize("kwargs", [
        {"initial": 0.0}, {"factor": 0.5}, {"jitter": 1.0},
        {"jitter": -0.1}, {"max_attempts": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_jitter_cannot_pierce_max_delay(self):
        """max_delay is a hard ceiling (regression: jitter used to be
        applied *after* the cap, so a +50% draw on a capped delay could
        reach 1.5x the documented maximum)."""
        import random
        policy = RetryPolicy(initial=30.0, factor=2.0, max_delay=30.0,
                             jitter=0.5, max_attempts=10)
        rng = random.Random(1)
        for n in range(1, 8):
            for _ in range(50):
                assert policy.delay(n, rng) <= policy.max_delay

    @settings(max_examples=150, deadline=None)
    @given(initial=st.floats(0.01, 100.0),
           factor=st.floats(1.0, 4.0),
           max_delay=st.floats(0.01, 120.0),
           jitter=st.floats(0.0, 0.99),
           retry_number=st.integers(1, 12),
           seed=st.integers(0, 2**16))
    def test_delay_never_exceeds_max(self, initial, factor, max_delay,
                                     jitter, retry_number, seed):
        import random
        policy = RetryPolicy(initial=initial, factor=factor,
                             max_delay=max_delay, jitter=jitter,
                             max_attempts=5)
        delay = policy.delay(retry_number, random.Random(seed))
        assert 0.0 <= delay <= max_delay

    def test_give_up_exactly_at_t_max_boundary(self):
        """Give-up lands *exactly* at first_sent + ack_timeout when the
        clock hits that instant: the evidence window is closed-exact,
        not strict-greater."""
        hub = LoopbackHub(drop_filter=drop_acks)
        quick = RetryPolicy(initial=0.1, factor=1.5, max_delay=0.5,
                            jitter=0.0, max_attempts=2)
        rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                                retry_policy=quick)
        hub.attach(ASN_B)  # silent: never ACKs
        rt_a.advance_to(1.0)
        rt_a.announce(ASN_B, ROUTE)
        # Fine-grained stepping so every timer fires at its exact due
        # time: retry at 1.1, exhaustion at 1.25, wait-out ends at 11.0.
        for step in range(20, 241):
            rt_a.advance_to(step * 0.05)
        assert len(rt_a.delivery.evidence) == 1
        evidence = rt_a.delivery.evidence[0]
        timeout = rt_a.config.ack_timeout
        assert evidence.gave_up_at - evidence.first_sent == \
            pytest.approx(timeout)
        assert evidence.gave_up_at == pytest.approx(
            evidence.first_sent + timeout)
        assert missing_ack_evidence_valid(
            rt_a.node.registry, evidence, timeout)

    def test_late_ack_between_exhaustion_and_t_max(self):
        """An ACK that arrives after the last retransmission but before
        T_max must cancel the pending alarm: no evidence, ever."""
        from repro.spider.log import EntryKind
        hub = LoopbackHub(drop_filter=drop_acks)
        quick = RetryPolicy(initial=0.1, factor=1.5, max_delay=0.5,
                            jitter=0.0, max_attempts=2)
        rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                                retry_policy=quick)
        rt_b = exchange_runtime(ASN_B, hub.attach(ASN_B),
                                retry_policy=quick)
        rt_a.advance_to(1.0)
        rt_b.advance_to(1.0)
        rt_a.announce(ASN_B, ROUTE)
        hub.deliver_all()
        rt_b.deliver_pending()  # B ACKs; the hub eats it
        # Exhaust A's attempts (max 2, done by t = 1.25)...
        for step in range(20, 101):
            t = step * 0.05
            rt_a.advance_to(t)
            rt_b.advance_to(t)
            hub.deliver_all()
            rt_b.deliver_pending()
        assert rt_a.delivery.pending  # attempts spent, T_max not reached
        assert rt_a.delivery.evidence == []
        # ...then hand A the ACK B logged but the network dropped,
        # squarely inside the (exhaustion, T_max) window.
        acks = rt_b.recorder.log.of_kind(EntryKind.SENT_ACK)
        assert acks
        rt_a.node.receive_spider(acks[0].payload)
        assert rt_a.delivery.pending == {}
        assert rt_a.delivery.acks_matched == 1
        # Let T_max (and much more) elapse: the wait-out timer still
        # fires, but must find nothing to accuse.
        for t in (11.0, 12.0, 30.0):
            rt_a.advance_to(t)
        assert rt_a.delivery.evidence == []
        assert rt_a.recorder.alarms == []

    def test_no_duplicate_evidence_after_give_up(self):
        """Once evidence exists for a message, later timer firings and
        further time must not add a second record or a second alarm."""
        hub = LoopbackHub(drop_filter=drop_acks)
        quick = RetryPolicy(initial=0.1, factor=1.5, max_delay=0.5,
                            jitter=0.0, max_attempts=2)
        rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                                retry_policy=quick)
        hub.attach(ASN_B)
        rt_a.advance_to(1.0)
        rt_a.announce(ASN_B, ROUTE)
        for step in range(5, 61):
            rt_a.advance_to(step * 0.25)
        assert len(rt_a.delivery.evidence) == 1
        rt_a.advance_to(30.0)
        rt_a.advance_to(60.0)
        assert len(rt_a.delivery.evidence) == 1
        missing_ack_alarms = [a for a in rt_a.recorder.alarms
                              if "no ack" in a]
        assert len(missing_ack_alarms) == 1
        assert rt_a.delivery.pending == {}

    def test_premature_alarm_is_deferred_past_t_max(self):
        """Attempts can run out before T_max; the alarm must still wait
        out the full ack_timeout before accusing anyone."""
        hub = LoopbackHub(drop_filter=drop_acks)
        quick = RetryPolicy(initial=0.1, factor=1.5, max_delay=0.5,
                            jitter=0.0, max_attempts=2)
        rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                                retry_policy=quick)
        hub.attach(ASN_B)  # present but silent: never ACKs
        rt_a.advance_to(1.0)
        rt_a.announce(ASN_B, ROUTE)
        # Attempts exhausted long before T_max = 10 s...
        rt_a.advance_to(5.0)
        assert rt_a.delivery.evidence == []
        # ...the evidence only lands once T_max has truly elapsed.
        rt_a.advance_to(11.5)
        assert len(rt_a.delivery.evidence) == 1
        evidence = rt_a.delivery.evidence[0]
        assert evidence.gave_up_at - evidence.first_sent >= 10.0


class TestBatchedRetryFlush:
    """With a batching transport, retries that fire in one timer pump
    leave as one ``send_many`` per receiver — and the §6.2 bookkeeping
    (attempt counts, T_max, evidence) is identical to the single-send
    path."""

    def test_retries_coalesce_into_one_send_many(self):
        hub = LoopbackHub(drop_filter=drop_acks)
        transport_a = hub.attach(ASN_A)
        rt_a = exchange_runtime(ASN_A, transport_a,
                                retry_policy=FAST_RETRY)
        rt_b = exchange_runtime(ASN_B, hub.attach(ASN_B),
                                retry_policy=FAST_RETRY)
        calls = []
        original = transport_a.send_many
        transport_a.send_many = lambda receiver, messages: (
            calls.append((receiver, list(messages))),
            original(receiver, messages))[-1]

        rt_a.advance_to(1.0)
        rt_a.announce(ASN_B, ROUTE)
        rt_a.withdraw(ASN_B, ROUTE.prefix)
        hub.deliver_all()
        rt_b.advance_to(1.0)
        rt_b.deliver_pending()

        # Both first retries are due by t=2 (0.5s initial ±10%); one
        # pump fires both and the zero-delay flush in the same call.
        rt_a.advance_to(2.0)
        assert rt_a.delivery.retries_sent == 2
        batched = [(r, ms) for r, ms in calls if len(ms) == 2]
        assert len(batched) == 1
        receiver, messages = batched[0]
        assert receiver == ASN_B
        hub.deliver_all()
        rt_b.deliver_pending()
        assert rt_b.recorder.alarms == []

    def test_evidence_timing_identical_to_single_send_path(self):
        """Run the dropped-ACK fault twice — batching transport versus
        the bare-callable wrapper that forces single sends — and the
        §6.2 outcomes must match exactly."""

        def outcome(force_single):
            hub = LoopbackHub(drop_filter=drop_acks)
            transport_a = hub.attach(ASN_A)
            rt_a = exchange_runtime(ASN_A, transport_a,
                                    retry_policy=FAST_RETRY)
            rt_b = exchange_runtime(ASN_B, hub.attach(ASN_B),
                                    retry_policy=FAST_RETRY)
            if force_single:
                rt_a.recorder.transport = \
                    lambda receiver, message: \
                    transport_a.send(receiver, message)
            rt_a.advance_to(1.0)
            rt_a.announce(ASN_B, ROUTE)
            hub.deliver_all()
            rt_b.advance_to(1.0)
            rt_b.deliver_pending()
            t = 1.0
            while not rt_a.delivery.evidence and t < 60.0:
                t += 0.25
                rt_a.advance_to(t)
                rt_b.advance_to(t)
                hub.deliver_all()
                rt_b.deliver_pending()
            from repro.spider.log import EntryKind
            (evidence,) = rt_a.delivery.evidence
            received = rt_b.recorder.log.of_kind(
                EntryKind.RECV_ANNOUNCE)
            return (rt_a.delivery.retries_sent, evidence.attempts,
                    evidence.first_sent, evidence.gave_up_at,
                    len(received))

        batched = outcome(force_single=False)
        single = outcome(force_single=True)
        assert batched[:4] == single[:4]
        # The receiver saw every retransmission in both runs.
        assert batched[4] == single[4] == FAST_RETRY.max_attempts
