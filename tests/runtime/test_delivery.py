"""Retry/backoff delivery and the ACK-or-evidence rule (Section 6.2).

The acceptance scenario: a fault that drops every ACK must first drive
exponential-backoff retransmissions and then, once attempts are
exhausted *and* T_max has elapsed, produce a
:class:`~repro.spider.evidence.MissingAckEvidence` record plus the
recorder alarm the paper requires.
"""

import pytest

from repro.runtime.delivery import RetryPolicy
from repro.runtime.scenario import ASN_A, ASN_B, ROUTE, \
    exchange_runtime, run_loopback_exchange
from repro.runtime.transport import LoopbackHub
from repro.spider.evidence import missing_ack_evidence_valid
from repro.spider.wire import SpiderAck

FAST_RETRY = RetryPolicy(initial=0.5, factor=2.0, max_delay=8.0,
                         jitter=0.1, max_attempts=4)


def drop_acks(_sender, _receiver, message):
    return isinstance(message, SpiderAck)


def run_dropped_ack_scenario():
    """Announce from A to B while the hub eats every ACK."""
    hub = LoopbackHub(drop_filter=drop_acks)
    rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                            retry_policy=FAST_RETRY)
    rt_b = exchange_runtime(ASN_B, hub.attach(ASN_B),
                            retry_policy=FAST_RETRY)

    sends = []
    transport = rt_a.recorder.transport
    rt_a.recorder.transport = lambda receiver, message: (
        sends.append((rt_a.clock.now, message)),
        transport(receiver, message))[-1]

    rt_a.advance_to(1.0)
    rt_a.announce(ASN_B, ROUTE)
    hub.deliver_all()
    rt_b.advance_to(1.0)
    rt_b.deliver_pending()

    t = 1.0
    while not rt_a.delivery.evidence and t < 60.0:
        t += 0.25
        rt_a.advance_to(t)
        rt_b.advance_to(t)
        hub.deliver_all()
        rt_b.deliver_pending()
    return rt_a, rt_b, hub, sends


class TestDroppedAckFault:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_dropped_ack_scenario()

    def test_retries_happened_with_growing_backoff(self, scenario):
        rt_a, _rt_b, _hub, sends = scenario
        assert rt_a.delivery.retries_sent == \
            FAST_RETRY.max_attempts - 1
        send_times = [t for t, _m in sends]
        assert len(send_times) == FAST_RETRY.max_attempts
        gaps = [b - a for a, b in zip(send_times, send_times[1:])]
        # Exponential backoff: every gap strictly exceeds the previous
        # (jitter is ±10%, factor is 2 — the order cannot flip).
        assert all(later > earlier
                   for earlier, later in zip(gaps, gaps[1:]))

    def test_retransmissions_carry_the_same_message(self, scenario):
        _rt_a, _rt_b, _hub, sends = scenario
        hashes = {m.message_hash() for _t, m in sends}
        assert len(hashes) == 1

    def test_evidence_surfaces_after_t_max(self, scenario):
        rt_a, _rt_b, _hub, _sends = scenario
        assert len(rt_a.delivery.evidence) == 1
        evidence = rt_a.delivery.evidence[0]
        assert evidence.accused == ASN_B
        assert evidence.attempts == FAST_RETRY.max_attempts
        assert evidence.gave_up_at - evidence.first_sent >= \
            rt_a.config.ack_timeout
        assert missing_ack_evidence_valid(
            rt_a.node.registry, evidence, rt_a.config.ack_timeout)

    def test_recorder_alarm_raised(self, scenario):
        rt_a, _rt_b, _hub, _sends = scenario
        assert any("no ack from AS12" in alarm
                   for alarm in rt_a.recorder.alarms)

    def test_acks_really_were_dropped(self, scenario):
        _rt_a, _rt_b, hub, _sends = scenario
        assert hub.frames_dropped == FAST_RETRY.max_attempts

    def test_receiver_saw_every_retransmission(self, scenario):
        _rt_a, rt_b, _hub, _sends = scenario
        from repro.spider.log import EntryKind
        received = rt_b.recorder.log.of_kind(EntryKind.RECV_ANNOUNCE)
        assert len(received) == FAST_RETRY.max_attempts


class TestAckCancelsRetry:
    def test_clean_exchange_never_retransmits(self):
        summary_a, summary_b = run_loopback_exchange()
        assert summary_a["retries"] == 0
        assert summary_a["alarms"] == []
        assert summary_b["alarms"] == []


class TestRetryPolicy:
    def test_delay_grows_and_caps(self):
        import random
        policy = RetryPolicy(initial=1.0, factor=2.0, max_delay=4.0,
                             jitter=0.0, max_attempts=10)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_is_bounded(self):
        import random
        policy = RetryPolicy(initial=1.0, jitter=0.25)
        rng = random.Random(7)
        for n in range(1, 20):
            delay = policy.delay(1, rng)
            assert 0.75 <= delay <= 1.25

    @pytest.mark.parametrize("kwargs", [
        {"initial": 0.0}, {"factor": 0.5}, {"jitter": 1.0},
        {"jitter": -0.1}, {"max_attempts": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_premature_alarm_is_deferred_past_t_max(self):
        """Attempts can run out before T_max; the alarm must still wait
        out the full ack_timeout before accusing anyone."""
        hub = LoopbackHub(drop_filter=drop_acks)
        quick = RetryPolicy(initial=0.1, factor=1.5, max_delay=0.5,
                            jitter=0.0, max_attempts=2)
        rt_a = exchange_runtime(ASN_A, hub.attach(ASN_A),
                                retry_policy=quick)
        hub.attach(ASN_B)  # present but silent: never ACKs
        rt_a.advance_to(1.0)
        rt_a.announce(ASN_B, ROUTE)
        # Attempts exhausted long before T_max = 10 s...
        rt_a.advance_to(5.0)
        assert rt_a.delivery.evidence == []
        # ...the evidence only lands once T_max has truly elapsed.
        rt_a.advance_to(11.5)
        assert len(rt_a.delivery.evidence) == 1
        evidence = rt_a.delivery.evidence[0]
        assert evidence.gave_up_at - evidence.first_sent >= 10.0
