"""Runtime clocks: the stepped grid and the monotonic wall clock."""

import time

import pytest

from repro.runtime.node_runtime import StepClock, WallClock


class TestStepClock:
    def test_millisecond_grid(self):
        clock = StepClock()
        clock.advance_to(1.23456)
        assert clock.now == 1.235

    def test_cannot_rewind(self):
        clock = StepClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)


class TestWallClock:
    def test_rebased_starts_near_zero(self):
        assert 0.0 <= WallClock().now < 1.0

    def test_unrebased_tracks_wall_time(self):
        clock = WallClock(rebase=False)
        assert abs(clock.now - time.time()) < 1.0

    def test_advances(self):
        clock = WallClock()
        first = clock.now
        time.sleep(0.01)
        assert clock.now > first

    def test_immune_to_wall_clock_steps(self, monkeypatch):
        """A backwards time.time() step (NTP correction, manual clock
        change) must not move ``now`` backwards — evidence-log
        timestamps have to be non-decreasing within a process
        (regression: ``now`` used to read time.time() directly)."""
        clock = WallClock()
        before = clock.now
        real_time = time.time
        monkeypatch.setattr(time, "time",
                            lambda: real_time() - 3600.0)
        after = clock.now
        assert after >= before
        # An hour-long backwards step must not even dent the reading.
        assert after - before < 1.0

    def test_time_dot_time_unused_after_init(self, monkeypatch):
        clock = WallClock(rebase=False)
        monkeypatch.setattr(time, "time", lambda: (_ for _ in ()).throw(
            AssertionError("now must not consult time.time()")))
        assert clock.now >= 0.0
