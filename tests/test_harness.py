"""Tests for the experiment harness and report formatting."""

import pytest

from repro.harness.experiments import flat_vs_mtt_experiment, \
    labeling_experiment, mtt_size_experiment, proof_experiment, \
    run_replay_experiment
from repro.harness.reporting import format_bytes, format_rate, \
    ratio_note, render_table


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table("Title", ["a", "bb"], [(1, 2.5), (30, "x")])
        lines = text.splitlines()
        assert lines[0] == "== Title =="
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_render_table_formats_numbers(self):
        text = render_table("t", ["v"], [(1234567,), (0.12345,)])
        assert "1,234,567" in text
        assert "0.1234" in text or "0.1235" in text

    def test_format_bytes(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 kB"
        assert format_bytes(3 * 1024 ** 3) == "3.0 GB"

    def test_format_rate(self):
        assert format_rate(500) == "500.0 bps"
        assert format_rate(12_000) == "12.0 kbps"
        assert format_rate(3_000_000) == "3.0 Mbps"

    def test_ratio_note(self):
        note = ratio_note(2.0, 4.0)
        assert "ratio 0.50" in note
        assert "paper" in note
        assert ratio_note(1.0, 0.0).endswith("(paper: 0)")


class TestMttSizeExperiment:
    def test_small_run(self):
        result = mtt_size_experiment(n_prefixes=100, k=3)
        assert result.census.prefix == 100
        assert result.census.bit == 300
        assert result.build_seconds >= 0

    def test_projection_scales_prefix_count(self):
        result = mtt_size_experiment(n_prefixes=100, k=3)
        projected = result.scaled_to_paper()
        assert projected.prefix == 389_653


class TestLabelingExperiment:
    def test_small_run(self):
        result = labeling_experiment(n_prefixes=100, k=3,
                                     workers=(1, 2))
        assert result.sequential_seconds > 0
        assert result.flat_seconds > 0
        assert set(result.makespans) == {1, 2}
        assert result.speedup(2) > 0
        assert result.pool_seconds == {}
        assert result.pool_mode == ""

    def test_real_pool_measurement(self):
        result = labeling_experiment(n_prefixes=100, k=3,
                                     workers=(1,), pool_workers=(1, 2))
        assert set(result.pool_seconds) == {1, 2}
        assert all(s > 0 for s in result.pool_seconds.values())
        assert result.pool_mode in ("process", "thread")
        assert result.pool_speedup(1) > 0


class TestFlatVsMtt:
    def test_commitment_sizes(self):
        result = flat_vs_mtt_experiment(n_prefixes=50, k=5)
        assert result.flat_commitment_bytes == 50 * 20
        assert result.mtt_commitment_bytes == 20


class TestReplayExperiment:
    @pytest.fixture(scope="class")
    def replay(self):
        return run_replay_experiment(scale=0.0005, k=5)

    def test_commitments_made(self, replay):
        assert replay.commitments_made > 0
        assert replay.last_census is not None

    def test_cpu_breakdown_keys(self, replay):
        breakdown = replay.cpu_breakdown()
        assert set(breakdown) == {"signatures", "mtt", "other"}
        assert all(v >= 0 for v in breakdown.values())
        assert replay.cpu_total() == pytest.approx(
            sum(breakdown.values()))

    def test_netreview_is_spider_minus_mtt(self, replay):
        assert replay.netreview_cpu() == pytest.approx(
            replay.cpu_total() - replay.cpu_breakdown()["mtt"])

    def test_rates_positive(self, replay):
        assert replay.bgp_rate_bps() > 0
        assert replay.spider_rate_bps() > replay.bgp_rate_bps()

    def test_storage_accounting(self, replay):
        assert replay.log_bytes_replay() > 0
        assert replay.snapshot_bytes() > 0
        per_commit = replay.commitment_bytes() / replay.commitments_made
        assert per_commit <= 48

    def test_proof_experiment_on_replay(self, replay):
        result = proof_experiment(replay)
        assert result.checks_ok
        assert result.single_prefix_bytes > 0
        assert len(result.per_neighbor_bytes) == 5
