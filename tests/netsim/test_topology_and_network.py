"""Tests for topologies and the end-to-end BGP network simulation."""

import pytest

from repro.bgp.policy import Relation
from repro.bgp.prefix import Prefix
from repro.netsim.network import BGP_TRAFFIC, Network, TraceEvent
from repro.netsim.topology import FOCUS_AS, INJECTION_AS, Topology, \
    caida_like_topology, degree_distribution, figure5_topology, \
    share_with_degree_at_most

P = Prefix.parse("203.0.113.0/24")


class TestTopology:
    def test_add_link_stores_both_directions(self):
        topology = Topology()
        topology.add_link(1, 2, Relation.CUSTOMER)
        assert topology.relations[(1, 2)] is Relation.CUSTOMER
        assert topology.relations[(2, 1)] is Relation.PROVIDER

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Topology().add_link(1, 1)

    def test_neighbors_and_degree(self):
        topology = Topology()
        topology.add_link(1, 2)
        topology.add_link(1, 3)
        assert topology.neighbors(1) == (2, 3)
        assert topology.degree(1) == 2
        assert topology.degree(2) == 1

    def test_relations_of(self):
        topology = Topology()
        topology.add_link(5, 7, Relation.CUSTOMER)
        topology.add_link(4, 5, Relation.CUSTOMER)
        assert topology.relations_of(5) == {7: Relation.CUSTOMER,
                                            4: Relation.PROVIDER}

    def test_validate_detects_corruption(self):
        topology = Topology()
        topology.add_link(1, 2, Relation.CUSTOMER)
        topology.relations[(2, 1)] = Relation.CUSTOMER  # corrupt
        with pytest.raises(ValueError):
            topology.validate()


class TestFigure5:
    def test_ten_ases(self):
        assert len(figure5_topology().ases) == 10

    def test_focus_as_has_five_neighbors(self):
        assert figure5_topology().degree(FOCUS_AS) == 5

    def test_injection_as_present(self):
        topology = figure5_topology()
        assert INJECTION_AS in topology.ases

    def test_relations_consistent(self):
        figure5_topology().validate()

    def test_connected(self):
        topology = figure5_topology()
        seen = {1}
        frontier = [1]
        while frontier:
            asn = frontier.pop()
            for neighbor in topology.neighbors(asn):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        assert seen == set(topology.ases)


class TestCaidaLike:
    def test_dominated_by_low_degree_ases(self):
        topology = caida_like_topology(n_ases=800, seed=1)
        share = share_with_degree_at_most(topology, 5)
        # §7.5: "89% of the current Internet ASes have five or fewer
        # neighbors" — the generator should land in that regime.
        assert 0.80 <= share <= 0.97

    def test_deterministic_given_seed(self):
        a = caida_like_topology(n_ases=200, seed=3)
        b = caida_like_topology(n_ases=200, seed=3)
        assert a.edges == b.edges

    def test_heavy_tail_exists(self):
        topology = caida_like_topology(n_ases=800, seed=1)
        histogram = degree_distribution(topology)
        assert max(histogram) >= 20  # some AS is a large hub

    def test_size_parameter(self):
        assert len(caida_like_topology(n_ases=150, seed=2).ases) == 150

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            caida_like_topology(n_ases=2)


class TestNetworkPropagation:
    def test_origination_reaches_everyone(self):
        network = Network(figure5_topology())
        network.originate(9, P)  # stub at the bottom
        network.settle()
        for asn, speaker in network.speakers.items():
            assert speaker.best(P) is not None, f"AS {asn} has no route"

    def test_paths_are_loop_free(self):
        network = Network(figure5_topology())
        network.originate(9, P)
        network.settle()
        for speaker in network.speakers.values():
            path = speaker.best(P).as_path
            assert len(set(path)) == len(path)

    def test_routing_consistency_after_convergence(self):
        network = Network(figure5_topology())
        network.originate(9, P)
        network.settle()
        assert network.routing_consistent()

    def test_withdrawal_propagates(self):
        network = Network(figure5_topology())
        network.originate(9, P)
        network.settle()
        network.withdraw_origin(9, P)
        network.settle()
        for asn, speaker in network.speakers.items():
            assert speaker.best(P) is None, f"AS {asn} kept a stale route"

    def test_traffic_metered(self):
        network = Network(figure5_topology())
        network.originate(9, P)
        network.settle()
        assert network.meter(9).total(BGP_TRAFFIC) > 0

    def test_valley_free_paths(self):
        """No path should go customer→provider after provider→customer."""
        topology = figure5_topology()
        network = Network(topology)
        network.originate(9, P)
        network.settle()
        for asn, speaker in network.speakers.items():
            route = speaker.best(P)
            hops = (asn,) + route.as_path
            if hops[0] == hops[1]:
                hops = hops[1:]  # the originator itself
            # Classify each adjacent pair; once we go "down" (to a
            # customer, as seen from the traffic direction) we may not
            # go "up" again.
            went_down = False
            for a, b in zip(hops, hops[1:]):
                rel = topology.relations[(a, b)]
                if rel is Relation.CUSTOMER:
                    went_down = True
                elif went_down and rel is Relation.PROVIDER:
                    pytest.fail(f"valley in path {hops} at {a}->{b}")


class TestExternalFeed:
    def test_feed_injection(self):
        network = Network(figure5_topology())
        network.attach_feed(INJECTION_AS, feed_asn=65000)
        events = [TraceEvent(time=1.0, prefix=P, path=(65000, 4000, 4001))]
        network.schedule_trace(65000, events)
        network.settle()
        assert network.speaker(INJECTION_AS).best(P) is not None
        # The provider-learned route reaches AS 2's customers (AS 5).
        assert network.speaker(FOCUS_AS).best(P) is not None

    def test_feed_withdrawal(self):
        network = Network(figure5_topology())
        network.attach_feed(INJECTION_AS, feed_asn=65000)
        network.schedule_trace(65000, [
            TraceEvent(time=1.0, prefix=P, path=(65000, 4000)),
            TraceEvent(time=2.0, prefix=P, path=None),
        ])
        network.settle()
        assert network.speaker(FOCUS_AS).best(P) is None

    def test_feed_asn_collision_rejected(self):
        network = Network(figure5_topology())
        with pytest.raises(ValueError):
            network.attach_feed(INJECTION_AS, feed_asn=5)

    def test_unattached_feed_rejected(self):
        network = Network(figure5_topology())
        with pytest.raises(ValueError):
            network.schedule_trace(65000, [])

    def test_path_auto_prepended_with_feed(self):
        network = Network(figure5_topology())
        network.attach_feed(INJECTION_AS, feed_asn=65000)
        network.schedule_trace(65000, [
            TraceEvent(time=1.0, prefix=P, path=(4000,)),
        ])
        network.settle()
        route = network.speaker(INJECTION_AS).best(P)
        assert route.as_path[0] == 65000
