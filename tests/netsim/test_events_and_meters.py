"""Tests for the event loop, clocks, and the measurement instruments."""

import pytest

from repro.netsim.clock import SimClock, SkewedClock
from repro.netsim.events import Simulator
from repro.netsim.metering import CpuMeter, StorageMeter, TrafficMeter


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(5.0)
        assert clock.now == 5.0

    def test_cannot_rewind(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_skewed_view(self):
        base = SimClock(100.0)
        skewed = SkewedClock(base, skew=-2.5)
        assert skewed.now == 97.5
        base.advance_to(200.0)
        assert skewed.now == 197.5


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.at(3.0, lambda: log.append("c"))
        sim.at(1.0, lambda: log.append("a"))
        sim.at(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.at(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_after_is_relative(self):
        sim = Simulator(start=10.0)
        fired = []
        sim.after(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [15.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator(start=10.0)
        with pytest.raises(ValueError):
            sim.at(5.0, lambda: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda: None)

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        log = []
        sim.at(1.0, lambda: log.append(1))
        sim.at(2.0, lambda: log.append(2))
        sim.run_until(1.5)
        assert log == [1]
        assert sim.now == 1.5
        assert sim.pending == 1

    def test_every_fires_periodically(self):
        sim = Simulator()
        fired = []
        sim.every(60.0, lambda: fired.append(sim.now), until=300.0)
        sim.run()
        assert fired == [60.0, 120.0, 180.0, 240.0, 300.0]

    def test_every_with_custom_start(self):
        sim = Simulator()
        fired = []
        sim.every(10.0, lambda: fired.append(sim.now), until=35.0,
                  start=5.0)
        sim.run()
        assert fired == [5.0, 15.0, 25.0, 35.0]

    def test_every_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            Simulator().every(0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def outer():
            log.append(("outer", sim.now))
            sim.after(1.0, lambda: log.append(("inner", sim.now)))

        sim.at(1.0, outer)
        sim.run()
        assert log == [("outer", 1.0), ("inner", 2.0)]

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.after(1.0, forever)

        sim.after(1.0, forever)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.at(float(i + 1), lambda: None)
        sim.run()
        assert sim.processed == 5


class TestTrafficMeter:
    def test_accumulates_by_category(self):
        meter = TrafficMeter()
        meter.record("bgp", 100, at=0.0)
        meter.record("bgp", 50, at=1.0)
        meter.record("spider", 10, at=1.0)
        assert meter.total("bgp") == 150
        assert meter.total() == 160

    def test_rate_bps(self):
        meter = TrafficMeter()
        meter.record("bgp", 1000, at=0.0)
        meter.record("bgp", 1000, at=5.0)
        assert meter.rate_bps("bgp", 0.0, 10.0) == pytest.approx(1600.0)

    def test_rate_window_is_half_open(self):
        """A sample exactly on the window end belongs to the *next*
        window, so adjacent windows tile without double-counting
        (regression: the window used to be inclusive on both ends,
        counting boundary samples twice)."""
        meter = TrafficMeter()
        meter.record("bgp", 1000, at=0.0)
        meter.record("bgp", 1000, at=10.0)
        first = meter.rate_bps("bgp", 0.0, 10.0)
        second = meter.rate_bps("bgp", 10.0, 20.0)
        assert first == pytest.approx(800.0)   # boundary sample excluded
        assert second == pytest.approx(800.0)  # ...and counted once here
        # The two half-windows carry exactly what the covering window
        # carries — no byte counted twice.
        whole = meter.rate_bps("bgp", 0.0, 20.0)
        assert (first + second) * 10 == pytest.approx(whole * 20)

    def test_rate_window_filter(self):
        meter = TrafficMeter()
        meter.record("bgp", 1000, at=0.0)
        meter.record("bgp", 9000, at=100.0)
        assert meter.rate_bps("bgp", 0.0, 10.0) == pytest.approx(800.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TrafficMeter().record("bgp", -1)

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            TrafficMeter().rate_bps("bgp", 5.0, 5.0)


class TestCpuMeter:
    def test_section_accumulates(self):
        meter = CpuMeter()
        with meter.section("signing"):
            sum(range(1000))
        with meter.section("signing"):
            sum(range(1000))
        assert meter.seconds_by_section["signing"] > 0
        assert meter.calls_by_section["signing"] == 2

    def test_add_external_measurement(self):
        meter = CpuMeter()
        meter.add("mtt", 13.4)
        assert meter.total() == pytest.approx(13.4)

    def test_share(self):
        meter = CpuMeter()
        meter.add("a", 1.0)
        meter.add("b", 3.0)
        assert meter.share("b") == pytest.approx(0.75)
        assert CpuMeter().share("x") == 0.0


class TestStorageMeter:
    def test_accumulates(self):
        meter = StorageMeter()
        meter.record("log", 100)
        meter.record("log", 50)
        meter.record("snapshot", 1000)
        assert meter.total("log") == 150
        assert meter.total() == 1150

    def test_projection(self):
        meter = StorageMeter()
        meter.record("log", 232_300)  # ≈ the paper's per-minute log rate
        one_year = meter.projected("log", measured_window=60.0,
                                   target_window=365 * 24 * 3600)
        assert one_year == pytest.approx(232_300 * 525_600, rel=1e-6)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            StorageMeter().projected("log", 0, 10)
