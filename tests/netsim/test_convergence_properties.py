"""Property tests: BGP convergence on random Gao-Rexford topologies.

Gao-Rexford configurations are guaranteed to converge; these tests
exercise the speaker/decision/policy stack on seeded random
customer-provider hierarchies and check safety properties that must hold
at any fixed point.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.policy import Relation
from repro.bgp.prefix import Prefix
from repro.netsim.network import Network
from repro.netsim.topology import Topology, caida_like_topology

P = Prefix.parse("203.0.113.0/24")


def converged_network(seed, n_ases=25):
    topology = caida_like_topology(n_ases=n_ases, seed=seed)
    network = Network(topology)
    return topology, network


@st.composite
def seeds(draw):
    return draw(st.integers(0, 50))


class TestConvergence:
    @settings(max_examples=10, deadline=None)
    @given(seeds(), st.integers(4, 25))
    def test_origination_converges_and_reaches_all(self, seed,
                                                   origin_index):
        topology, network = converged_network(seed)
        origin = topology.ases[origin_index % len(topology.ases)]
        network.originate(origin, P)
        network.settle()
        # Customer-tree topologies are fully connected through the core,
        # so every AS ends up with a route.
        for asn in topology.ases:
            assert network.speaker(asn).best(P) is not None

    @settings(max_examples=10, deadline=None)
    @given(seeds())
    def test_paths_loop_free_at_fixed_point(self, seed):
        topology, network = converged_network(seed)
        origin = topology.ases[-1]
        network.originate(origin, P)
        network.settle()
        for asn in topology.ases:
            path = network.speaker(asn).best(P).as_path
            assert len(set(path)) == len(path)
            assert asn not in path or path == (asn,)

    @settings(max_examples=10, deadline=None)
    @given(seeds())
    def test_paths_follow_topology_edges(self, seed):
        topology, network = converged_network(seed)
        origin = topology.ases[0]
        network.originate(origin, P)
        network.settle()
        edges = topology.edges
        for asn in topology.ases:
            route = network.speaker(asn).best(P)
            hops = (asn,) + route.as_path
            for a, b in zip(hops, hops[1:]):
                if a == b:
                    continue
                assert frozenset((a, b)) in edges, \
                    f"path {hops} uses a non-edge {a}-{b}"

    @settings(max_examples=10, deadline=None)
    @given(seeds())
    def test_valley_free_at_fixed_point(self, seed):
        topology, network = converged_network(seed)
        origin = topology.ases[len(topology.ases) // 2]
        network.originate(origin, P)
        network.settle()
        for asn in topology.ases:
            route = network.speaker(asn).best(P)
            hops = (asn,) + route.as_path
            if hops[0] == hops[1]:
                hops = hops[1:]
            went_down = False
            for a, b in zip(hops, hops[1:]):
                rel = topology.relations[(a, b)]
                if rel is Relation.CUSTOMER:
                    went_down = True
                elif went_down and rel is Relation.PROVIDER:
                    pytest.fail(f"valley in {hops} at {a}->{b}")

    @settings(max_examples=8, deadline=None)
    @given(seeds())
    def test_withdrawal_cleans_up_everywhere(self, seed):
        topology, network = converged_network(seed, n_ases=15)
        origin = topology.ases[-1]
        network.originate(origin, P)
        network.settle()
        network.withdraw_origin(origin, P)
        network.settle()
        for asn in topology.ases:
            assert network.speaker(asn).best(P) is None

    @settings(max_examples=8, deadline=None)
    @given(seeds())
    def test_deterministic_fixed_point(self, seed):
        """Same seed, same topology, same events → identical outcome."""
        results = []
        for _ in range(2):
            topology, network = converged_network(seed, n_ases=15)
            network.originate(topology.ases[0], P)
            network.settle()
            results.append({
                asn: network.speaker(asn).best(P).as_path
                for asn in topology.ases
            })
        assert results[0] == results[1]
