"""Tests for proxy-aggregation support in the MTT (§8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.crypto.rc4 import Rc4Csprng
from repro.mtt.aggregation import aggregate_bits, \
    aggregation_candidates, aggregation_overhead, sibling, \
    with_aggregates
from repro.mtt.labeling import label_tree
from repro.mtt.proofs import generate_proof, verify_proof
from repro.mtt.tree import Mtt

P_LOW = Prefix.parse("10.0.0.0/24")
P_HIGH = Prefix.parse("10.0.1.0/24")
PARENT = Prefix.parse("10.0.0.0/23")
LONER = Prefix.parse("192.168.0.0/24")


class TestSibling:
    def test_flips_last_bit(self):
        assert sibling(P_LOW) == P_HIGH
        assert sibling(P_HIGH) == P_LOW

    def test_default_route_has_none(self):
        with pytest.raises(ValueError):
            sibling(Prefix.parse("0.0.0.0/0"))

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=24))
    def test_involution_property(self, bits):
        prefix = Prefix.from_bits(tuple(bits))
        assert sibling(sibling(prefix)) == prefix
        assert sibling(prefix).parent() == prefix.parent()


class TestCandidates:
    def test_complete_pair_found(self):
        triples = aggregation_candidates([P_LOW, P_HIGH, LONER])
        assert triples == [(P_LOW, P_HIGH, PARENT)]

    def test_incomplete_pair_ignored(self):
        assert aggregation_candidates([P_LOW, LONER]) == []

    def test_each_pair_reported_once(self):
        triples = aggregation_candidates([P_HIGH, P_LOW])
        assert len(triples) == 1


class TestAggregateBits:
    def test_and_semantics(self):
        assert aggregate_bits((1, 0, 1), (1, 1, 0)) == (1, 0, 0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_bits((1,), (1, 0))


class TestWithAggregates:
    def test_parent_added_for_complete_pairs(self):
        entries = {P_LOW: (1, 0), P_HIGH: (1, 1), LONER: (0, 1)}
        extended = with_aggregates(entries)
        assert extended[PARENT] == (1, 0)
        assert LONER.parent() not in extended

    def test_added_even_when_not_aggregatable(self):
        """The §8 privacy rule: the parent entry exists whether or not
        aggregation occurred — here the halves share no class, so the
        aggregate is all-zeros, but it is still committed."""
        entries = {P_LOW: (1, 0), P_HIGH: (0, 1)}
        extended = with_aggregates(entries)
        assert extended[PARENT] == (0, 0)

    def test_existing_parent_entry_wins(self):
        entries = {P_LOW: (1, 0), P_HIGH: (1, 0), PARENT: (0, 1)}
        extended = with_aggregates(entries)
        assert extended[PARENT] == (0, 1)

    def test_multi_level(self):
        quarter = {Prefix.parse(f"10.0.{i}.0/24"): (1,)
                   for i in range(4)}
        extended = with_aggregates(quarter, levels=2)
        assert Prefix.parse("10.0.0.0/23") in extended
        assert Prefix.parse("10.0.2.0/23") in extended
        assert Prefix.parse("10.0.0.0/22") in extended

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            with_aggregates({}, levels=0)

    def test_aggregate_provable_in_mtt(self):
        """End to end: the aggregate entry commits and proves like any
        other prefix."""
        entries = with_aggregates({P_LOW: (1, 0), P_HIGH: (1, 1)})
        tree = Mtt.build(entries)
        report = label_tree(tree, Rc4Csprng(b"agg"))
        proof = generate_proof(tree, PARENT, 0)
        assert verify_proof(report.root_label, proof, expected_k=2) == 1
        proof0 = generate_proof(tree, PARENT, 1)
        assert verify_proof(report.root_label, proof0,
                            expected_k=2) == 0


class TestOverhead:
    def test_overhead_measured(self):
        dense = {Prefix.parse(f"10.0.{i}.0/24"): (1,) for i in range(8)}
        overhead = aggregation_overhead(dense)
        assert overhead == pytest.approx(0.5)  # 4 parents for 8 children

    def test_sparse_tables_cost_little(self):
        sparse = {Prefix.parse("10.0.0.0/24"): (1,),
                  Prefix.parse("172.16.0.0/24"): (1,)}
        assert aggregation_overhead(sparse) == 0.0

    def test_empty(self):
        assert aggregation_overhead({}) == 0.0
