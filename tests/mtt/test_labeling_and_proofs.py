"""Tests for MTT labeling, reconstruction, and bit proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.crypto.rc4 import Rc4Csprng
from repro.mtt.labeling import assign_randomness, compute_label, \
    label_tree, label_tree_parallel, label_tree_with_workers, \
    parallel_labeling_report
from repro.mtt.proofs import LabelDigestCache, MttBitProof, PathStep, \
    ProofError, generate_proof, verify_proof
from repro.mtt.tree import Mtt


def build_labeled(entries, seed=b"seed"):
    tree = Mtt.build(entries)
    report = label_tree(tree, Rc4Csprng(seed))
    return tree, report


BASIC = {
    Prefix.parse("0.0.0.0/2"): [1, 0, 1],
    Prefix.parse("160.0.0.0/3"): [0, 1, 0],
    Prefix.parse("128.0.0.0/1"): [1, 1, 0],
}


class TestLabeling:
    def test_root_label_is_20_bytes(self):
        _, report = build_labeled(BASIC)
        assert len(report.root_label) == 20

    def test_deterministic_for_same_seed(self):
        _, a = build_labeled(BASIC, seed=b"s1")
        _, b = build_labeled(BASIC, seed=b"s1")
        assert a.root_label == b.root_label

    def test_fresh_seed_changes_root(self):
        """Section 5.3: bitstrings must be replaced for each commitment,
        otherwise neighbors could link identical subtrees across rounds."""
        _, a = build_labeled(BASIC, seed=b"s1")
        _, b = build_labeled(BASIC, seed=b"s2")
        assert a.root_label != b.root_label

    def test_bit_flip_changes_root(self):
        changed = dict(BASIC)
        changed[Prefix.parse("0.0.0.0/2")] = [0, 0, 1]
        _, a = build_labeled(BASIC)
        _, b = build_labeled(changed)
        assert a.root_label != b.root_label

    def test_hash_count_matches_census(self):
        tree, report = build_labeled(BASIC)
        census = tree.census()
        assert report.hash_count == census.bit + census.prefix + \
            census.inner

    def test_reconstruction_from_seed(self):
        """The §6.5 replay property: rebuilding the same tree with the
        stored seed reproduces the identical commitment."""
        tree1, report1 = build_labeled(BASIC, seed=b"commit-42")
        tree2, report2 = build_labeled(BASIC, seed=b"commit-42")
        proof1 = generate_proof(tree1, Prefix.parse("160.0.0.0/3"), 1)
        proof2 = generate_proof(tree2, Prefix.parse("160.0.0.0/3"), 1)
        assert report1.root_label == report2.root_label
        assert proof1 == proof2

    def test_unlabeled_tree_raises_on_proof(self):
        tree = Mtt.build(BASIC)
        with pytest.raises(ProofError):
            generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)


class TestParallelLabeling:
    def make_wide_entries(self, n=64, k=4):
        return {Prefix.parse(f"{a}.{b}.0.0/16"): [1] * k
                for a in range(0, 256, 256 // (n // 16 or 1))
                for b in range(16)}

    def test_same_root_as_sequential(self):
        entries = self.make_wide_entries()
        tree1 = Mtt.build(entries)
        seq = label_tree(tree1, Rc4Csprng(b"s"))
        tree2 = Mtt.build(entries)
        par = parallel_labeling_report(tree2, Rc4Csprng(b"s"), workers=3)
        assert par.root_label == seq.root_label

    def test_makespan_not_longer_than_sequential(self):
        tree = Mtt.build(self.make_wide_entries())
        report = parallel_labeling_report(tree, Rc4Csprng(b"s"), workers=3)
        assert report.makespan_seconds <= report.sequential_seconds * 1.05

    def test_speedup_bounded_by_worker_count(self):
        tree = Mtt.build(self.make_wide_entries())
        report = parallel_labeling_report(tree, Rc4Csprng(b"s"), workers=3)
        assert report.speedup <= 3.6  # allow measurement noise on top

    def test_single_worker_equals_sequential_shape(self):
        tree = Mtt.build(self.make_wide_entries())
        report = parallel_labeling_report(tree, Rc4Csprng(b"s"), workers=1)
        assert report.speedup <= 1.1

    def test_rejects_zero_workers(self):
        tree = Mtt.build(BASIC)
        with pytest.raises(ValueError):
            parallel_labeling_report(tree, Rc4Csprng(b"s"), workers=0)


class TestGoldenRoots:
    """Anchors captured from the pre-optimization implementation: the
    flattened schedule, blocked keystream, and worker pool must all
    preserve the exact CSPRNG draw order and therefore these roots."""

    GOLDEN_BASIC = "7c275377aa7845b2d22b413297edb5700baec380"
    GOLDEN_WIDE = "d56c957599fc43ecd2cb483563e01b49e59ea4d8"

    def wide_entries(self):
        from repro.traces.workload import generate_prefixes
        return {p: [i % 2 for i in range(7)]
                for p in generate_prefixes(200, seed=11)}

    def test_basic_anchor(self):
        tree = Mtt.build(BASIC)
        report = label_tree(tree, Rc4Csprng(b"golden-seed"))
        assert report.root_label.hex() == self.GOLDEN_BASIC

    def test_wide_anchor(self):
        tree = Mtt.build(self.wide_entries())
        report = label_tree(tree, Rc4Csprng(b"golden-wide"))
        assert report.root_label.hex() == self.GOLDEN_WIDE

    def test_generic_traversal_matches_anchor(self):
        # compute_label is the reference implementation the fast
        # schedule-driven pass must agree with.
        tree = Mtt.build(self.wide_entries())
        assign_randomness(tree, Rc4Csprng(b"golden-wide"))
        assert compute_label(tree.root).hex() == self.GOLDEN_WIDE


class TestRealPool:
    """Process, thread, serial, and reference labeling must all produce
    byte-identical roots from the same seed."""

    def wide_tree(self):
        from repro.traces.workload import generate_prefixes
        entries = {p: [1, 0, 1] for p in generate_prefixes(150, seed=3)}
        return Mtt.build(entries)

    def test_process_pool_matches_serial(self):
        tree = self.wide_tree()
        serial = label_tree(tree, Rc4Csprng(b"pool"))
        tree2 = self.wide_tree()
        par = label_tree_parallel(tree2, Rc4Csprng(b"pool"), workers=3,
                                  cut_depth=3)
        assert par.root_label == serial.root_label
        assert par.jobs > 1
        assert par.mode in ("process", "thread")  # thread = fallback

    def test_thread_pool_matches_serial(self):
        tree = self.wide_tree()
        serial = label_tree(tree, Rc4Csprng(b"pool"))
        tree2 = self.wide_tree()
        par = label_tree_parallel(tree2, Rc4Csprng(b"pool"), workers=3,
                                  cut_depth=3, prefer_processes=False)
        assert par.root_label == serial.root_label
        assert par.mode == "thread"

    def test_single_worker_uses_serial_path(self):
        tree = self.wide_tree()
        par = label_tree_parallel(tree, Rc4Csprng(b"pool"), workers=1)
        assert par.mode == "serial"
        assert par.jobs == 1

    def test_pool_labels_support_proofs(self):
        # Labels must land on the nodes so proof generation works the
        # same regardless of labeling mode.
        tree = self.wide_tree()
        par = label_tree_parallel(tree, Rc4Csprng(b"pool"), workers=2,
                                  cut_depth=3)
        prefix = tree.prefixes[0]
        proof = generate_proof(tree, prefix, 0)
        assert verify_proof(par.root_label, proof, expected_k=3) == 1

    def test_dispatch_helper(self):
        tree = self.wide_tree()
        serial = label_tree_with_workers(tree, Rc4Csprng(b"pool"))
        tree2 = self.wide_tree()
        pooled = label_tree_with_workers(tree2, Rc4Csprng(b"pool"),
                                         workers=2, cut_depth=3)
        assert serial.root_label == pooled.root_label

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            label_tree_parallel(Mtt.build(BASIC), Rc4Csprng(b"s"),
                                workers=0)


class TestLabelDigestCache:
    def test_cached_verification_matches_uncached(self):
        tree, report = build_labeled(BASIC)
        cache = LabelDigestCache()
        for prefix, bits in BASIC.items():
            for class_index, bit in enumerate(bits):
                proof = generate_proof(tree, prefix, class_index)
                assert verify_proof(report.root_label, proof,
                                    expected_k=3, cache=cache) == bit
        assert cache.hits > 0  # shared steps were actually reused

    def test_cache_does_not_accept_forgeries(self):
        tree, report = build_labeled(BASIC)
        cache = LabelDigestCache()
        proof = generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)
        # Warm the cache with the honest proof first.
        assert verify_proof(report.root_label, proof,
                            cache=cache) is not None
        forged = MttBitProof(prefix=proof.prefix,
                             class_index=proof.class_index,
                             bit=1 - proof.bit, blinding=proof.blinding,
                             steps=proof.steps)
        assert verify_proof(report.root_label, forged,
                            cache=cache) is None


class TestProofs:
    def test_all_bits_provable(self):
        tree, report = build_labeled(BASIC)
        for prefix, bits in BASIC.items():
            for class_index, bit in enumerate(bits):
                proof = generate_proof(tree, prefix, class_index)
                assert verify_proof(report.root_label, proof,
                                    expected_k=3) == bit

    def test_proof_for_absent_prefix_rejected(self):
        tree, _ = build_labeled(BASIC)
        with pytest.raises(ProofError):
            generate_proof(tree, Prefix.parse("10.0.0.0/8"), 0)

    def test_proof_for_out_of_range_class_rejected(self):
        tree, _ = build_labeled(BASIC)
        with pytest.raises(ProofError):
            generate_proof(tree, Prefix.parse("0.0.0.0/2"), 7)

    def test_flipped_bit_rejected(self):
        tree, report = build_labeled(BASIC)
        proof = generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)
        forged = MttBitProof(prefix=proof.prefix,
                             class_index=proof.class_index,
                             bit=1 - proof.bit, blinding=proof.blinding,
                             steps=proof.steps)
        assert verify_proof(report.root_label, forged) is None

    def test_wrong_root_rejected(self):
        tree, _ = build_labeled(BASIC, seed=b"s1")
        _, other = build_labeled(BASIC, seed=b"s2")
        proof = generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)
        assert verify_proof(other.root_label, proof) is None

    def test_proof_not_replayable_for_other_prefix(self):
        tree, report = build_labeled(BASIC)
        proof = generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)
        forged = MttBitProof(prefix=Prefix.parse("128.0.0.0/2"),
                             class_index=proof.class_index,
                             bit=proof.bit, blinding=proof.blinding,
                             steps=proof.steps)
        assert verify_proof(report.root_label, forged) is None

    def test_proof_not_replayable_for_other_class(self):
        tree, report = build_labeled(BASIC)
        proof = generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)
        forged = MttBitProof(prefix=proof.prefix, class_index=1,
                             bit=proof.bit, blinding=proof.blinding,
                             steps=proof.steps)
        assert verify_proof(report.root_label, forged) is None

    def test_wrong_k_rejected(self):
        tree, report = build_labeled(BASIC)
        proof = generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)
        assert verify_proof(report.root_label, proof,
                            expected_k=5) is None

    def test_truncated_path_rejected(self):
        tree, report = build_labeled(BASIC)
        proof = generate_proof(tree, Prefix.parse("160.0.0.0/3"), 0)
        forged = MttBitProof(prefix=proof.prefix,
                             class_index=proof.class_index,
                             bit=proof.bit, blinding=proof.blinding,
                             steps=proof.steps[:-1])
        assert verify_proof(report.root_label, forged) is None

    def test_proof_size_scales_with_k(self):
        """§7.3: each bit proof with k classes contributes ≈ 20·k bytes."""
        sizes = {}
        for k in (2, 10, 50):
            entries = {p: [1] * k for p in BASIC}
            tree, _ = build_labeled(entries)
            proof = generate_proof(tree, Prefix.parse("0.0.0.0/2"), 0)
            sizes[k] = proof.wire_size()
        assert sizes[50] - sizes[10] == pytest.approx(40 * 20, abs=20)
        assert sizes[10] > sizes[2]

    def test_proof_reveals_no_other_prefix(self):
        """Privacy: proofs from trees differing in *other* prefixes are
        structurally identical in size and shape for the same prefix."""
        small = {Prefix.parse("128.0.0.0/1"): [1, 0]}
        big = dict(small)
        big[Prefix.parse("64.0.0.0/2")] = [1, 1]  # sibling subtree
        tree_a, _ = build_labeled(small, seed=b"x")
        tree_b, _ = build_labeled(big, seed=b"y")
        proof_a = generate_proof(tree_a, Prefix.parse("128.0.0.0/1"), 0)
        proof_b = generate_proof(tree_b, Prefix.parse("128.0.0.0/1"), 0)
        assert len(proof_a.steps) == len(proof_b.steps)
        assert proof_a.wire_size() == proof_b.wire_size()
        assert [len(s.child_labels) for s in proof_a.steps] == \
            [len(s.child_labels) for s in proof_b.steps]


@st.composite
def random_entries(draw):
    n = draw(st.integers(1, 12))
    k = draw(st.integers(1, 6))
    prefixes = draw(st.sets(
        st.lists(st.integers(0, 1), min_size=0, max_size=10).map(
            lambda bits: Prefix.from_bits(tuple(bits))),
        min_size=1, max_size=n))
    return {
        p: [draw(st.integers(0, 1)) for _ in range(k)]
        for p in prefixes
    }


class TestProofProperties:
    @settings(max_examples=25, deadline=None)
    @given(random_entries(), st.data())
    def test_roundtrip_property(self, entries, data):
        tree, report = build_labeled(entries)
        prefix = data.draw(st.sampled_from(sorted(entries)))
        k = len(entries[prefix])
        class_index = data.draw(st.integers(0, k - 1))
        proof = generate_proof(tree, prefix, class_index)
        assert verify_proof(report.root_label, proof, expected_k=k) == \
            entries[prefix][class_index]

    @settings(max_examples=25, deadline=None)
    @given(random_entries(), st.data())
    def test_binding_property(self, entries, data):
        tree, report = build_labeled(entries)
        prefix = data.draw(st.sampled_from(sorted(entries)))
        class_index = data.draw(st.integers(0, len(entries[prefix]) - 1))
        proof = generate_proof(tree, prefix, class_index)
        forged = MttBitProof(prefix=prefix, class_index=class_index,
                             bit=1 - proof.bit, blinding=proof.blinding,
                             steps=proof.steps)
        assert verify_proof(report.root_label, forged) is None
