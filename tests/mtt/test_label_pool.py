"""Tests for the shared-memory warm labeling pool (repro.mtt.pool).

The pool's contract has three legs — determinism (byte-identical to
serial labeling, per node, in every mode), warmth (workers and the
installed program survive across rounds), and survivability (a dead
worker costs one serial-fallback round, never a wrong or partial
tree).  Each gets exercised here, plus the recorder-level lifecycle
that owns the pool in a deployment.
"""

import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.crypto.keys import KeyRegistry, make_identity
from repro.crypto.rc4 import Rc4Csprng
from repro.mtt.labeling import label_tree, label_tree_parallel
from repro.mtt.pool import LabelPool, PoolBrokenError, subtree_jobs
from repro.mtt.tree import Mtt
from repro.core.promise import total_order_promise
from repro.netsim.events import Simulator
from repro.spider.config import SpiderConfig
from repro.spider.node import evaluation_scheme
from repro.spider.recorder import Recorder


def entries_grid(n, k):
    return {Prefix.parse(f"10.{i}.0.0/16"): [(i >> j) & 1
                                             for j in range(k)]
            for i in range(n)}


def serial_snapshot(tree, seed):
    """Serial-label the tree and capture (root, per-node labels)."""
    report = label_tree(tree, Rc4Csprng(seed))
    return report.root_label, node_labels(tree)


def node_labels(tree):
    return [node.label for node in tree.schedule().slot_nodes]


@pytest.fixture(scope="module")
def pools():
    """Warm pools shared across tests; keyed by (workers, mode)."""
    cache = {}

    def get(workers, prefer_processes=True):
        key = (workers, prefer_processes)
        if key not in cache or cache[key].broken:
            cache[key] = LabelPool(workers,
                                   prefer_processes=prefer_processes,
                                   timeout=10.0)
        return cache[key]

    yield get
    for pool in cache.values():
        pool.close()


class TestWarmPool:
    def test_rounds_match_serial_and_reuse_workers(self, pools):
        tree = Mtt.build(entries_grid(24, 5))
        root_a, _ = serial_snapshot(tree, b"round-a")
        root_b, _ = serial_snapshot(tree, b"round-b")
        pool = pools(2)
        pids = sorted(pool.worker_pids())
        report_a = label_tree_parallel(tree, Rc4Csprng(b"round-a"),
                                       workers=2, pool=pool)
        report_b = label_tree_parallel(tree, Rc4Csprng(b"round-b"),
                                       workers=2, pool=pool)
        assert report_a.root_label == root_a
        assert report_b.root_label == root_b
        assert report_a.mode == pool.mode
        # Warm: same workers served both rounds, and the second round
        # reused the installed program (no install cost).
        assert sorted(pool.worker_pids()) == pids
        assert report_b.spinup_seconds == 0.0

    def test_per_node_labels_match_serial(self, pools):
        tree = Mtt.build(entries_grid(16, 4))
        _, expected = serial_snapshot(tree, b"per-node")
        pool = pools(2)
        label_tree_parallel(tree, Rc4Csprng(b"per-node"), workers=2,
                            pool=pool, materialize=True)
        assert node_labels(tree) == expected

    def test_materialize_false_returns_root_only(self, pools):
        tree = Mtt.build(entries_grid(16, 4))
        root, _ = serial_snapshot(tree, b"root-only")
        pool = pools(2)
        report = label_tree_parallel(tree, Rc4Csprng(b"root-only"),
                                     workers=2, pool=pool,
                                     materialize=False)
        assert report.root_label == root

    def test_shape_change_reinstalls_program(self, pools):
        pool = pools(2)
        for n in (8, 20):
            tree = Mtt.build(entries_grid(n, 3))
            root, _ = serial_snapshot(tree, b"reinstall")
            report = label_tree_parallel(tree, Rc4Csprng(b"reinstall"),
                                         workers=2, pool=pool)
            assert report.root_label == root

    def test_closed_pool_raises(self):
        pool = LabelPool(2, timeout=10.0)
        pool.close()
        tree = Mtt.build(entries_grid(4, 2))
        with pytest.raises(PoolBrokenError):
            pool.label(tree, cut_depth=2)
        pool.close()  # idempotent

    def test_ephemeral_pool_counts_spinup(self):
        tree = Mtt.build(entries_grid(8, 3))
        root, _ = serial_snapshot(tree, b"ephemeral")
        report = label_tree_parallel(tree, Rc4Csprng(b"ephemeral"),
                                     workers=2)
        assert report.root_label == root
        assert report.spinup_seconds > 0.0


class TestWorkerDeathRecovery:
    """Satellite: a killed worker degrades to one serial-fallback
    round with byte-identical output, and marks the pool broken."""

    def test_sigkill_mid_deployment_falls_back_serially(self):
        pool = LabelPool(2, timeout=10.0)
        if pool.mode != "process":
            pool.close()
            pytest.skip("no subprocess support on this platform")
        tree = Mtt.build(entries_grid(20, 4))
        root, expected = serial_snapshot(tree, b"killed")
        # Warm the pool, then kill a worker the way an OOM-killer would.
        label_tree_parallel(tree, Rc4Csprng(b"warmup"), workers=2,
                            pool=pool)
        victim = pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 5.0
        while time.time() < deadline:
            try:
                os.kill(victim, 0)
            except ProcessLookupError:
                break
            time.sleep(0.01)
        report = label_tree_parallel(tree, Rc4Csprng(b"killed"),
                                     workers=2, pool=pool)
        assert report.mode == "serial-fallback"
        assert report.root_label == root
        assert node_labels(tree) == expected
        assert pool.broken
        pool.close()

    def test_die_command_breaks_pool(self):
        pool = LabelPool(1, timeout=5.0)
        if pool.mode != "process":
            pool.close()
            pytest.skip("no subprocess support on this platform")
        tree = Mtt.build(entries_grid(6, 2))
        label_tree(tree, Rc4Csprng(b"die"))  # assigns randomness
        pool.label(tree, cut_depth=2)  # install + one good round
        pool._conns[0].send(("die",))
        with pytest.raises(PoolBrokenError):
            pool.label(tree, cut_depth=2)
        assert pool.broken
        pool.close()


class TestThreadFallback:
    """Satellite: the degraded thread path must dispatch whole bins to
    a warm executor (not per-subtree tasks) and stay byte-identical."""

    def test_thread_mode_matches_serial_per_node(self, pools):
        tree = Mtt.build(entries_grid(16, 4))
        _, expected = serial_snapshot(tree, b"threads")
        pool = pools(2, prefer_processes=False)
        assert pool.mode == "thread"
        report = label_tree_parallel(tree, Rc4Csprng(b"threads"),
                                     workers=2, pool=pool)
        assert report.mode == "thread"
        assert node_labels(tree) == expected

    def test_thread_dispatch_is_per_worker_not_per_job(self, pools):
        tree = Mtt.build(entries_grid(32, 4))
        label_tree(tree, Rc4Csprng(b"dispatch"))  # assigns randomness
        pool = pools(2, prefer_processes=False)
        result = pool.label(tree, cut_depth=4)
        # Many subtree jobs, but at most one dispatch per worker: the
        # dispatch-per-subtree overhead was the thread path's
        # regression.
        assert result.jobs > pool.workers
        assert 0 < result.dispatches <= pool.workers

    def test_prefer_processes_false_without_pool(self):
        tree = Mtt.build(entries_grid(8, 3))
        root, _ = serial_snapshot(tree, b"adhoc-thread")
        report = label_tree_parallel(tree, Rc4Csprng(b"adhoc-thread"),
                                     workers=2, prefer_processes=False)
        assert report.mode == "thread"
        assert report.root_label == root


class TestRecorderLifecycle:
    """The recorder owns one warm pool per deployment (§7.1's c
    commitment threads), shared with the proof generator."""

    ELECTOR, CONSUMER = 5, 7

    def make_recorder(self, **config_kwargs):
        registry = KeyRegistry()
        identity = make_identity(self.ELECTOR, registry=registry,
                                 bits=512, seed=910)
        make_identity(self.CONSUMER, registry=registry, bits=512,
                      seed=911)
        scheme = evaluation_scheme(5)
        sim = Simulator()
        return Recorder(
            identity=identity, registry=registry, scheme=scheme,
            promises={self.CONSUMER: total_order_promise(scheme)},
            config=SpiderConfig(**config_kwargs),
            clock=sim.clock,
            transport=lambda receiver, message: None,
            schedule=sim.after)

    def test_serial_config_has_no_pool(self):
        recorder = self.make_recorder(commit_workers=1)
        assert recorder.labeling_pool() is None
        recorder.close()

    def test_warm_pool_disabled_by_config(self):
        recorder = self.make_recorder(commit_workers=2,
                                      label_pool_warm=False)
        assert recorder.labeling_pool() is None
        recorder.close()

    def test_pool_survives_across_commitment_rounds(self):
        recorder = self.make_recorder(commit_workers=2)
        pool = recorder.labeling_pool()
        assert pool is not None and not pool.broken
        record_a = recorder.make_commitment()
        record_b = recorder.make_commitment()
        assert record_a.root and record_b.root
        assert recorder.labeling_pool() is pool  # warm, not respawned
        recorder.close()

    def test_broken_pool_is_replaced_next_round(self):
        recorder = self.make_recorder(commit_workers=2)
        pool = recorder.labeling_pool()
        assert pool is not None
        pool.broken = True
        replacement = recorder.labeling_pool()
        assert replacement is not pool
        assert not replacement.broken
        recorder.close()

    def test_close_is_idempotent_and_releases_pool(self):
        recorder = self.make_recorder(commit_workers=2)
        assert recorder.labeling_pool() is not None
        recorder.close()
        recorder.close()
        # The recorder stays usable: a later round respawns lazily.
        assert recorder.labeling_pool() is not None
        recorder.close()


@st.composite
def random_entries(draw):
    n = draw(st.integers(1, 10))
    k = draw(st.integers(1, 5))
    prefixes = draw(st.sets(
        st.lists(st.integers(0, 1), min_size=0, max_size=9).map(
            lambda bits: Prefix.from_bits(tuple(bits))),
        min_size=1, max_size=n))
    return {
        p: [draw(st.integers(0, 1)) for _ in range(k)]
        for p in prefixes
    }


class TestPoolDeterminismProperty:
    """Satellite: serial, shared-memory pool, and thread fallback agree
    byte for byte — roots AND per-node labels — over random tree
    shapes, cut depths, and worker counts."""

    @settings(max_examples=20, deadline=None)
    @given(random_entries(), st.integers(0, 5), st.integers(2, 4),
           st.binary(min_size=1, max_size=8))
    def test_all_modes_byte_identical(self, pools, entries, cut_depth,
                                      workers, seed):
        tree = Mtt.build(entries)
        root, expected = serial_snapshot(tree, seed)
        for prefer_processes in (True, False):
            pool = pools(workers, prefer_processes)
            report = label_tree_parallel(
                tree, Rc4Csprng(seed), workers=workers,
                cut_depth=cut_depth, pool=pool)
            assert report.root_label == root, (pool.mode, cut_depth)
            assert node_labels(tree) == expected, (pool.mode, cut_depth)

    @settings(max_examples=10, deadline=None)
    @given(random_entries(), st.integers(0, 4))
    def test_job_partition_covers_tree(self, entries, cut_depth):
        tree = Mtt.build(entries)
        jobs = subtree_jobs(tree, cut_depth)
        schedule = tree.schedule()
        sizes = schedule.subtree_sizes
        seen = set()
        for job in jobs:
            hi = schedule.slot_of(job) + 1
            lo = hi - sizes[hi - 1]
            block = set(range(lo, hi))
            assert not (block & seen)  # disjoint
            seen |= block
        assert len(seen) <= schedule.n_slots
