"""Privacy properties of the MTT (Section 5.3).

The two claims under test:

1. a bit proof does not leak the presence or absence of any prefix other
   than the one being proven — because sibling labels in a proof are
   20-byte values that could equally be dummy randomness or subtree
   hashes;
2. blinding freshness: reusing bitstrings across commitments would let
   neighbors link unchanged subtrees; fresh seeds make consecutive
   commitments unlinkable.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.rc4 import Rc4Csprng
from repro.mtt.labeling import label_tree
from repro.mtt.proofs import generate_proof
from repro.mtt.tree import Mtt

TARGET = Prefix.parse("128.0.0.0/2")


def labeled_tree(entries, seed):
    tree = Mtt.build(entries)
    report = label_tree(tree, Rc4Csprng(seed))
    return tree, report


def proof_labels(proof):
    """Every sibling label exposed by a proof."""
    labels = []
    for step in proof.steps:
        labels.extend(step.child_labels)
    return labels


class TestSiblingIndistinguishability:
    def test_all_exposed_labels_have_hash_length(self):
        entries = {TARGET: [1, 0], Prefix.parse("0.0.0.0/2"): [0, 1]}
        tree, _ = labeled_tree(entries, b"s")
        proof = generate_proof(tree, TARGET, 0)
        assert all(len(label) == DIGEST_SIZE
                   for label in proof_labels(proof))

    def test_dummy_and_real_siblings_statistically_alike(self):
        """Byte-level statistics cannot separate dummy labels from real
        subtree hashes: both are uniform-looking 20-byte strings."""
        alone = {TARGET: [1, 0]}
        crowded = {TARGET: [1, 0]}
        for i in range(8):
            crowded[Prefix.parse(f"{i}.0.0.0/8")] = [1, 1]

        def mean_byte(proof):
            labels = proof_labels(proof)
            data = b"".join(labels)
            return sum(data) / len(data)

        means_alone, means_crowded = [], []
        for round_index in range(20):
            seed = b"stat-%d" % round_index
            tree_a, _ = labeled_tree(dict(alone), seed)
            tree_b, _ = labeled_tree(dict(crowded), seed + b"x")
            means_alone.append(mean_byte(generate_proof(tree_a, TARGET,
                                                        0)))
            means_crowded.append(mean_byte(generate_proof(tree_b, TARGET,
                                                          0)))
        # Both populations center on 127.5 (uniform bytes); their means
        # must be within a few standard errors of each other.
        mu_a = sum(means_alone) / len(means_alone)
        mu_b = sum(means_crowded) / len(means_crowded)
        assert abs(mu_a - 127.5) < 15
        assert abs(mu_b - 127.5) < 15
        assert abs(mu_a - mu_b) < 20

    def test_proof_shape_identical_with_and_without_sibling(self):
        """The §5.3 guarantee, structurally: the proof for TARGET is the
        same shape whether or not a sibling subtree exists, so its mere
        form reveals nothing."""
        alone = {TARGET: [1, 0]}
        with_sibling = {TARGET: [1, 0],
                        Prefix.parse("192.0.0.0/2"): [1, 1]}
        tree_a, _ = labeled_tree(alone, b"a")
        tree_b, _ = labeled_tree(with_sibling, b"b")
        proof_a = generate_proof(tree_a, TARGET, 0)
        proof_b = generate_proof(tree_b, TARGET, 0)
        assert len(proof_a.steps) == len(proof_b.steps)
        assert [len(s.child_labels) for s in proof_a.steps] == \
            [len(s.child_labels) for s in proof_b.steps]
        assert proof_a.wire_size() == proof_b.wire_size()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 3), st.booleans())
    def test_shape_invariance_property(self, extra_count, deeper):
        """Adding unrelated prefixes never changes the proof shape for a
        fixed target prefix (as long as none extends the target)."""
        base = {TARGET: [1]}
        entries = dict(base)
        for i in range(extra_count):
            entries[Prefix.parse(f"{8 + i}.0.0.0/8")] = [1]
        if deeper:
            entries[Prefix.parse("200.0.0.0/7")] = [0]
        tree_a, _ = labeled_tree(base, b"p1")
        tree_b, _ = labeled_tree(entries, b"p2")
        proof_a = generate_proof(tree_a, TARGET, 0)
        proof_b = generate_proof(tree_b, TARGET, 0)
        assert [len(s.child_labels) for s in proof_a.steps] == \
            [len(s.child_labels) for s in proof_b.steps]


class TestBlindingFreshness:
    def test_same_state_different_seed_unlinkable(self):
        """Two commitments over identical routing state share no labels
        when the seed is fresh — the §5.3 requirement."""
        entries = {TARGET: [1, 0], Prefix.parse("0.0.0.0/2"): [0, 1]}
        tree_a, report_a = labeled_tree(dict(entries), b"commit-1")
        tree_b, report_b = labeled_tree(dict(entries), b"commit-2")
        proof_a = generate_proof(tree_a, TARGET, 0)
        proof_b = generate_proof(tree_b, TARGET, 0)
        assert report_a.root_label != report_b.root_label
        labels_a = set(proof_labels(proof_a))
        labels_b = set(proof_labels(proof_b))
        assert not labels_a & labels_b

    def test_seed_reuse_links_unchanged_subtrees(self):
        """The attack the paper warns about: with a reused seed, an
        unchanged subtree keeps its label across commitments, revealing
        that the corresponding routes did not change."""
        entries_t0 = {TARGET: [1, 0], Prefix.parse("0.0.0.0/2"): [0, 1]}
        entries_t1 = {TARGET: [1, 0], Prefix.parse("0.0.0.0/2"): [1, 1]}
        tree_a, _ = labeled_tree(dict(entries_t0), b"reused")
        tree_b, _ = labeled_tree(dict(entries_t1), b"reused")
        label_a = tree_a.prefix_node(TARGET).label
        label_b = tree_b.prefix_node(TARGET).label
        # TARGET's subtree was identical in both states: same label.
        assert label_a == label_b
