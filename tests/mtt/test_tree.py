"""Tests for MTT construction, structure, and the node census."""

import pytest

from repro.bgp.prefix import Prefix
from repro.mtt.nodes import BitNode, DummyNode, InnerNode, PrefixNode, \
    validate_structure
from repro.mtt.stats import PAPER_CENSUS, predict_census, \
    slot_identity_holds
from repro.mtt.tree import Mtt


def entries(prefix_texts, k=2, bit=1):
    return {Prefix.parse(t): [bit] * k for t in prefix_texts}


FIGURE4 = ["0.0.0.0/2", "160.0.0.0/3", "128.0.0.0/1"]


class TestBuild:
    def test_figure4_structure(self):
        """The example MTT of Figure 4: prefixes 0/2, 160/3 and 128/1."""
        tree = Mtt.build(entries(FIGURE4, k=1))
        tree.validate()
        assert set(tree.prefixes) == {Prefix.parse(t) for t in FIGURE4}
        # 160.0.0.0/3 is 101 in binary: root -1-> node -0-> node -1-> node
        # -E-> prefix node.
        node = tree.root
        for bit in (1, 0, 1):
            node = node.children[bit]
            assert isinstance(node, InnerNode)
        assert isinstance(node.end, PrefixNode)
        assert node.end.prefix == Prefix.parse("160.0.0.0/3")

    def test_every_inner_slot_filled(self):
        tree = Mtt.build(entries(FIGURE4))
        for node in tree.iter_nodes():
            if isinstance(node, InnerNode):
                assert all(c is not None for c in node.children)

    def test_bits_stored_per_prefix(self):
        p, q = Prefix.parse("10.0.0.0/8"), Prefix.parse("192.0.0.0/4")
        tree = Mtt.build({p: [1, 0, 1], q: [0, 0, 1]})
        assert tree.bits_for(p) == (1, 0, 1)
        assert tree.bits_for(q) == (0, 0, 1)
        assert tree.bits_for(Prefix.parse("172.16.0.0/12")) is None

    def test_nested_prefixes_coexist(self):
        tree = Mtt.build(entries(["10.0.0.0/8", "10.0.0.0/16",
                                  "10.128.0.0/9"]))
        tree.validate()
        assert len(tree.prefixes) == 3

    def test_default_route_at_root(self):
        tree = Mtt.build(entries(["0.0.0.0/0", "128.0.0.0/1"]))
        tree.validate()
        assert isinstance(tree.root.end, PrefixNode)

    def test_duplicate_prefix_rejected(self):
        with pytest.raises(ValueError):
            Mtt.build({Prefix.parse("10.0.0.0/8"): []})

    def test_empty_tree(self):
        tree = Mtt.build({})
        assert tree.prefixes == ()
        census = tree.census()
        assert census.total == 1 and census.dummy == 1

    def test_path_to(self):
        tree = Mtt.build(entries(FIGURE4))
        path = tree.path_to(Prefix.parse("160.0.0.0/3"))
        assert len(path) == 4  # root + 3 bit levels
        assert tree.path_to(Prefix.parse("10.0.0.0/8")) is None


class TestCensus:
    def test_figure4_counts(self):
        tree = Mtt.build(entries(FIGURE4, k=1))
        census = tree.census()
        assert census.prefix == 3
        assert census.bit == 3
        # Paths: "", 0, 00, 1, 10, 101 → 6 inner nodes.
        assert census.inner == 6
        assert slot_identity_holds(census)

    def test_bit_count_scales_with_k(self):
        for k in (1, 5, 50):
            tree = Mtt.build(entries(FIGURE4, k=k))
            assert tree.census().bit == 3 * k

    def test_slot_identity_matches_paper_census(self):
        # 3·inner = (inner−1) + prefix + dummy holds for the §7.3 numbers
        # (to within the paper's rounding of the dummy count).
        lhs = 3 * PAPER_CENSUS.inner
        rhs = (PAPER_CENSUS.inner - 1) + PAPER_CENSUS.prefix \
            + PAPER_CENSUS.dummy
        assert abs(lhs - rhs) <= 1000

    def test_predict_census_matches_built_tree(self):
        texts = ["10.0.0.0/8", "10.0.0.0/16", "192.168.0.0/16",
                 "192.168.1.0/24", "0.0.0.0/0", "128.0.0.0/2"]
        built = Mtt.build(entries(texts, k=3)).census()
        predicted = predict_census([Prefix.parse(t) for t in texts],
                                   classes_per_prefix=3)
        assert built == predicted

    def test_predict_census_empty(self):
        census = predict_census([], classes_per_prefix=5)
        assert census.prefix == 0 and census.bit == 0

    def test_memory_estimate_positive_and_monotone(self):
        small = Mtt.build(entries(FIGURE4, k=1)).census()
        large = Mtt.build(entries(FIGURE4, k=50)).census()
        assert 0 < small.estimated_bytes() < large.estimated_bytes()


class TestValidation:
    def test_validate_rejects_inner_on_end_edge(self):
        root = InnerNode()
        root.children[0] = DummyNode(label=b"x")
        root.children[1] = DummyNode(label=b"x")
        root.children[2] = InnerNode()
        with pytest.raises(ValueError):
            validate_structure(root)

    def test_validate_rejects_missing_child(self):
        root = InnerNode()
        root.children[0] = DummyNode(label=b"x")
        root.children[1] = DummyNode(label=b"x")
        with pytest.raises(ValueError):
            validate_structure(root)

    def test_validate_rejects_bit_node_under_inner(self):
        root = InnerNode()
        root.children[0] = BitNode(class_index=0, bit=1, blinding=None)
        root.children[1] = DummyNode(label=b"x")
        root.children[2] = DummyNode(label=b"x")
        with pytest.raises(ValueError):
            validate_structure(root)

    def test_prefix_node_requires_bit_nodes(self):
        with pytest.raises(ValueError):
            PrefixNode(prefix=Prefix.parse("10.0.0.0/8"), bit_nodes=[])

    def test_bit_node_requires_binary_bit(self):
        with pytest.raises(ValueError):
            BitNode(class_index=0, bit=2, blinding=None)
