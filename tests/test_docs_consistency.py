"""Documentation sanity: the docs reference things that actually exist.

Keeps README/DESIGN/EXPERIMENTS honest as the code evolves: every module
path, bench file, and example they mention must exist, and the public
API surfaces they advertise must import.
"""

import importlib
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def readme():
    return (ROOT / "README.md").read_text()


@pytest.fixture(scope="module")
def design():
    return (ROOT / "DESIGN.md").read_text()


class TestFilesExist:
    def test_required_documents(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "pyproject.toml"):
            assert (ROOT / name).is_file(), name

    def test_examples_mentioned_in_readme_exist(self, readme):
        for match in re.findall(r"`(\w+\.py)`", readme):
            if (ROOT / "examples" / match).exists():
                continue
            # Bench files are referenced the same way.
            assert (ROOT / "benchmarks" / match).exists() or \
                match.startswith("test_ablation_"), match

    def test_bench_files_in_design_index_exist(self, design):
        for match in re.findall(r"benchmarks/(test_\w+\.py)", design):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_test_files_in_design_exist(self, design):
        for match in re.findall(r"tests/([\w/]+\.py)", design):
            assert (ROOT / "tests" / match).exists(), match


class TestModulesImport:
    @pytest.mark.parametrize("module", [
        "repro", "repro.crypto", "repro.bgp", "repro.core", "repro.mtt",
        "repro.spider", "repro.netreview", "repro.netsim",
        "repro.traces", "repro.faults", "repro.harness",
    ])
    def test_package_imports(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize("module", [
        "repro.crypto", "repro.bgp", "repro.core", "repro.mtt",
        "repro.spider", "repro.netsim", "repro.traces", "repro.faults",
    ])
    def test_all_exports_resolve(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_modules_mentioned_in_design_import(self, design):
        for match in set(re.findall(r"`(repro\.[\w.]+)`", design)):
            module = match
            attribute = None
            try:
                importlib.import_module(module)
                continue
            except ImportError:
                module, _, attribute = match.rpartition(".")
            mod = importlib.import_module(module)
            assert hasattr(mod, attribute), match


class TestExamplesAreValidPython:
    @pytest.mark.parametrize("path", sorted(
        (ROOT / "examples").glob("*.py")))
    def test_compiles(self, path):
        compile(path.read_text(), str(path), "exec")

    @pytest.mark.parametrize("path", sorted(
        (ROOT / "examples").glob("*.py")))
    def test_has_main_guard_and_docstring(self, path):
        source = path.read_text()
        assert '__main__' in source
        assert source.lstrip().startswith(("#!", '"""'))
