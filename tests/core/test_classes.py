"""Tests for indifference-class schemes (Section 3 examples)."""

import pytest

from repro.bgp.policy import Relation
from repro.bgp.prefix import Prefix
from repro.bgp.route import NULL_ROUTE, Route
from repro.core.classes import ClassScheme, local_pref_scheme, \
    path_length_scheme, relation_scheme, relation_with_path_length_scheme, \
    selective_export_scheme

P = Prefix.parse("203.0.113.0/24")


def route(neighbor=1, path=(1, 9), lp=100):
    return Route(prefix=P, as_path=tuple(path), neighbor=neighbor,
                 local_pref=lp)


class TestClassScheme:
    def test_requires_labels(self):
        with pytest.raises(ValueError):
            ClassScheme(labels=(), classify_fn=lambda r: 0)

    def test_requires_unique_labels(self):
        with pytest.raises(ValueError):
            ClassScheme(labels=("a", "a"), classify_fn=lambda r: 0)

    def test_out_of_range_classification_rejected(self):
        scheme = ClassScheme(labels=("only",), classify_fn=lambda r: 5)
        with pytest.raises(ValueError):
            scheme.classify(NULL_ROUTE)

    def test_none_classification_rejected(self):
        scheme = ClassScheme(labels=("only",), classify_fn=lambda r: None)
        with pytest.raises(ValueError):
            scheme.classify(NULL_ROUTE)

    def test_encode_depends_on_labels(self):
        a = ClassScheme(labels=("x", "y"), classify_fn=lambda r: 0)
        b = ClassScheme(labels=("x", "z"), classify_fn=lambda r: 0)
        assert a.encode() != b.encode()

    def test_label_of(self):
        scheme = relation_scheme({1: Relation.CUSTOMER})
        assert scheme.label_of(route(neighbor=1)) == "customer-routes"


class TestRelationScheme:
    def test_two_tier_gao_rexford(self):
        scheme = relation_scheme({1: Relation.CUSTOMER, 2: Relation.PEER})
        assert scheme.k == 3
        assert scheme.classify(NULL_ROUTE) == 0
        assert scheme.classify(route(neighbor=2, path=(2, 9))) == 1
        assert scheme.classify(route(neighbor=1)) == 2

    def test_three_tier(self):
        scheme = relation_scheme(
            {1: Relation.CUSTOMER, 2: Relation.PEER, 3: Relation.PROVIDER},
            include_provider_tier=True)
        assert scheme.k == 4
        assert scheme.classify(route(neighbor=3, path=(3, 9))) == 1
        assert scheme.classify(route(neighbor=2, path=(2, 9))) == 2
        assert scheme.classify(route(neighbor=1)) == 3

    def test_unknown_neighbor_is_non_customer(self):
        scheme = relation_scheme({1: Relation.CUSTOMER})
        assert scheme.classify(route(neighbor=42, path=(42, 9))) == 1

    def test_sibling_counts_as_peer_tier(self):
        scheme = relation_scheme({4: Relation.SIBLING},
                                 include_provider_tier=True)
        assert scheme.classify(route(neighbor=4, path=(4, 9))) == 2


class TestLocalPrefScheme:
    def test_tiers(self):
        scheme = local_pref_scheme([80, 100, 120])
        assert scheme.k == 4
        assert scheme.classify(NULL_ROUTE) == 0
        assert scheme.classify(route(lp=79)) == 0
        assert scheme.classify(route(lp=80)) == 1
        assert scheme.classify(route(lp=119)) == 2
        assert scheme.classify(route(lp=500)) == 3

    def test_rejects_unsorted_thresholds(self):
        with pytest.raises(ValueError):
            local_pref_scheme([100, 80])

    def test_rejects_duplicate_thresholds(self):
        with pytest.raises(ValueError):
            local_pref_scheme([100, 100])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            local_pref_scheme([])


class TestPathLengthScheme:
    def test_shorter_paths_get_higher_classes(self):
        scheme = path_length_scheme(5)
        assert scheme.k == 6
        one_hop = scheme.classify(route(path=(1,)))
        two_hop = scheme.classify(route(path=(1, 9)))
        assert one_hop == 5 and two_hop == 4

    def test_null_and_overlong_share_class_zero(self):
        scheme = path_length_scheme(3)
        assert scheme.classify(NULL_ROUTE) == 0
        assert scheme.classify(route(path=(1, 2, 3, 4))) == 0

    def test_evaluation_scale_50_classes(self):
        # Section 7.2: "defined 50 indifference classes based on the
        # number of hops".
        scheme = path_length_scheme(49)
        assert scheme.k == 50

    def test_rejects_zero_max(self):
        with pytest.raises(ValueError):
            path_length_scheme(0)


class TestSelectiveExportScheme:
    def test_null_route_sits_between(self):
        scheme = selective_export_scheme(
            lambda r: not r.traverses(13))
        good = route(path=(1, 9))
        secret = route(path=(1, 13, 9))
        assert scheme.classify(secret) == 0
        assert scheme.classify(NULL_ROUTE) == 1
        assert scheme.classify(good) == 2


class TestRelationWithPathLength:
    def test_splits_classes_by_length(self):
        relations = {1: Relation.CUSTOMER, 2: Relation.PEER}
        scheme = relation_with_path_length_scheme(relations, max_length=3)
        assert scheme.k == 7  # ⊥ + 3 non-customer + 3 customer
        short_cust = scheme.classify(route(neighbor=1, path=(1,)))
        long_cust = scheme.classify(route(neighbor=1, path=(1, 8, 9)))
        short_peer = scheme.classify(route(neighbor=2, path=(2,)))
        assert short_cust > long_cust  # same group: shorter is higher
        assert short_cust > short_peer  # customer group sits above

    def test_labels_follow_paper_wording(self):
        scheme = relation_with_path_length_scheme(
            {2: Relation.PEER}, max_length=3)
        assert "non-customer-length-2" in scheme.labels

    def test_rejects_zero_max(self):
        with pytest.raises(ValueError):
            relation_with_path_length_scheme({}, max_length=0)
