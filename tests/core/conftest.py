"""Shared fixtures for the VPref core tests.

RSA key generation is the slowest operation in the suite, so identities
are created once per session with small (512-bit) keys and shared.
The canonical cast mirrors Figure 1/3: elector AS 5 ("Bob"), producers
ASes 1-3 ("Charlie, Doris, Eliot"), consumers ASes 6-7 ("Alice" et al.).
"""

import pytest

from repro.bgp.policy import Relation
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.core.classes import relation_scheme
from repro.crypto.keys import KeyRegistry, make_identity

ELECTOR = 5
PRODUCERS = (1, 2, 3)
CONSUMERS = (6, 7)
PREFIX = Prefix.parse("203.0.113.0/24")


@pytest.fixture(scope="session")
def registry():
    return KeyRegistry()


@pytest.fixture(scope="session")
def identities(registry):
    return {
        asn: make_identity(asn, registry=registry, bits=512, seed=1000 + asn)
        for asn in (ELECTOR,) + PRODUCERS + CONSUMERS
    }


@pytest.fixture(scope="session")
def relations():
    """Business relations of the elector's producers, as the elector sees
    them: AS 1 is a customer, ASes 2 and 3 are peers."""
    return {1: Relation.CUSTOMER, 2: Relation.PEER, 3: Relation.PEER}


@pytest.fixture(scope="session")
def scheme(relations):
    """Two-tier 'prefer customer' scheme: no-route < non-customer < customer."""
    return relation_scheme(relations)


def make_route(neighbor, path=None, prefix=PREFIX, local_pref=100):
    path = path or (neighbor, 90 + neighbor)
    return Route(prefix=prefix, as_path=tuple(path), neighbor=neighbor,
                 local_pref=local_pref)
