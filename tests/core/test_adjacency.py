"""Tests for per-adjacency VPref instances (§8 AS atomicity)."""

import pytest

from repro.bgp.route import NULL_ROUTE
from repro.core.adjacency import ADJACENCY_BASE, adjacency_id, \
    adjacency_owner, dummy_adjacencies, register_adjacencies
from repro.core.elector import Behavior
from repro.core.promise import Promise, chain_promise, find_conflict, \
    total_order_promise, trivial_promise
from repro.core.protocol import run_round
from repro.crypto.keys import Identity

from .conftest import CONSUMERS, ELECTOR, PRODUCERS, make_route


class TestAdjacencyIds:
    def test_distinct_per_point(self):
        assert adjacency_id(6, 0) != adjacency_id(6, 1)
        assert adjacency_id(6, 0) != adjacency_id(7, 0)

    def test_owner_roundtrip(self):
        assert adjacency_owner(adjacency_id(6, 3)) == 6
        assert adjacency_owner(42) == 42  # plain ASNs pass through

    def test_never_collides_with_asns(self):
        assert adjacency_id(65535, 999) >= ADJACENCY_BASE
        assert adjacency_id(1, 0) >= ADJACENCY_BASE

    def test_point_range_checked(self):
        with pytest.raises(ValueError):
            adjacency_id(6, 1000)

    def test_register_shares_the_as_key(self, registry, identities):
        points = register_adjacencies(registry, identities[6], points=2)
        assert len(points) == 2
        for identity in points:
            assert registry.public_key(identity.asn) == \
                identities[6].public_key
            assert identity.private_key is identities[6].private_key


class TestPerAdjacencyPromises:
    def test_different_promises_per_adjacency(self, registry, identities,
                                              scheme):
        """Alice-in-Europe gets the full promise; Alice-in-Asia only a
        partial one.  Both hold simultaneously (§3.1: 'an AS may make
        different promises to different neighbors, each consistent with
        what it is actually doing')."""
        europe, asia = register_adjacencies(registry, identities[6],
                                            points=2)
        promises = {
            europe.asn: total_order_promise(scheme),
            asia.asn: chain_promise(scheme, [0, 2]),  # partial
        }
        routes = {1: make_route(neighbor=1), 2: make_route(neighbor=2)}
        result = run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={p: identities[p] for p in routes},
            producer_routes=routes,
            consumer_identities={europe.asn: europe, asia.asn: asia},
            promises=promises,
        )
        assert result.clean
        assert result.offers[europe.asn] == routes[1]

    def test_conflicting_adjacency_promises_found(self, scheme):
        """Theorem 5 applies across adjacencies too: promising opposite
        orders at two interconnection points is unkeepable."""
        to_europe = Promise(scheme=scheme, order=frozenset({(1, 2)}))
        to_asia = Promise(scheme=scheme, order=frozenset({(2, 1)}))
        assert find_conflict([to_europe, to_asia]) is not None

    def test_violation_at_one_adjacency_detected(self, registry,
                                                 identities, scheme):
        europe, asia = register_adjacencies(registry, identities[6],
                                            points=2)
        promises = {
            europe.asn: total_order_promise(scheme),
            asia.asn: total_order_promise(scheme),
        }
        routes = {1: make_route(neighbor=1), 2: make_route(neighbor=2)}
        behavior = Behavior(offer_override={asia.asn: routes[2]})
        result = run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={p: identities[p] for p in routes},
            producer_routes=routes,
            consumer_identities={europe.asn: europe, asia.asn: asia},
            promises=promises, behavior=behavior,
        )
        detectors = {v.detector for v in result.verdicts}
        assert asia.asn in detectors
        assert europe.asn not in detectors


class TestDummyAdjacencies:
    def test_padding_to_total(self, scheme):
        real = {adjacency_id(6, 0): total_order_promise(scheme)}
        padded = dummy_adjacencies(scheme, real, total=4)
        assert len(padded) == 4
        assert adjacency_id(6, 0) in padded

    def test_dummies_carry_trivial_promises(self, scheme):
        real = {adjacency_id(6, 0): total_order_promise(scheme)}
        padded = dummy_adjacencies(scheme, real, total=3)
        for participant, promise in padded.items():
            if participant != adjacency_id(6, 0):
                assert promise.order == frozenset()

    def test_dummies_never_cause_violations(self, registry, identities,
                                            scheme):
        real_points = register_adjacencies(registry, identities[6],
                                           points=1)
        real = {real_points[0].asn: total_order_promise(scheme)}
        padded = dummy_adjacencies(scheme, real, total=3)
        dummy_ids = [p for p in padded if p not in real]
        dummy_identities = {
            participant: Identity(asn=participant,
                                  private_key=identities[6].private_key)
            for participant in dummy_ids
        }
        for participant in dummy_ids:
            registry.register(participant, identities[6].public_key)
        consumers = {real_points[0].asn: real_points[0],
                     **dummy_identities}
        routes = {1: make_route(neighbor=1)}
        result = run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={1: identities[1]},
            producer_routes=routes,
            consumer_identities=consumers, promises=padded,
        )
        assert result.clean

    def test_total_below_real_rejected(self, scheme):
        real = {adjacency_id(6, 0): total_order_promise(scheme),
                adjacency_id(6, 1): total_order_promise(scheme)}
        with pytest.raises(ValueError):
            dummy_adjacencies(scheme, real, total=1)

    def test_empty_real_rejected(self, scheme):
        with pytest.raises(ValueError):
            dummy_adjacencies(scheme, {}, total=3)
