"""Property-based tests of the four VPref theorems (Section 4.6).

Random promises, random inputs, and random elector misbehaviors are driven
through :func:`repro.core.protocol.run_round`:

* **Verifiability** — every injected promise break is detected by at least
  one correct neighbor;
* **Evidence** — every PoM raised convinces the third-party validator;
* **Accuracy** — honest rounds never produce verdicts, and the validator
  rejects evidence fabricated against an honest elector;
* **Privacy** — what a neighbor sees reveals exactly the bits the paper
  says it may learn, and nothing distinguishes two routing states that
  BGP itself would not distinguish.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.prefix import Prefix
from repro.bgp.route import NULL_ROUTE, Route
from repro.core.bits import available_classes, offer_conforms
from repro.core.classes import ClassScheme
from repro.core.elector import Behavior
from repro.core.promise import Promise
from repro.core.protocol import run_round
from repro.core.verdict import validate_pom

from .conftest import CONSUMERS, ELECTOR, PRODUCERS

PREFIX = Prefix.parse("203.0.113.0/24")
K = 4


def bucket_scheme(k=K):
    """Class of a route = its local_pref (mod k); ⊥ gets class 0."""
    def classify(route):
        if route is NULL_ROUTE:
            return 0
        return route.local_pref % k
    return ClassScheme(labels=tuple(f"tier-{i}" for i in range(k)),
                       classify_fn=classify)


SCHEME = bucket_scheme()


def route_in_class(neighbor, class_index):
    return Route(prefix=PREFIX, as_path=(neighbor, 900 + neighbor),
                 neighbor=neighbor, local_pref=class_index)


@st.composite
def promises_strategy(draw, k=K):
    """An acyclic promise: order pairs drawn consistently with a random
    permutation of the classes, so cycles are impossible."""
    perm = draw(st.permutations(range(k)))
    position = {cls: i for i, cls in enumerate(perm)}
    pairs = set()
    for low in range(k):
        for high in range(k):
            if position[low] < position[high] and draw(st.booleans()):
                pairs.add((low, high))
    return Promise(scheme=SCHEME, order=frozenset(pairs))


@st.composite
def inputs_strategy(draw):
    routes = {}
    for producer in PRODUCERS:
        if draw(st.booleans()):
            routes[producer] = route_in_class(
                producer, draw(st.integers(0, K - 1)))
        else:
            routes[producer] = NULL_ROUTE
    return routes


def run(registry, identities, routes, promises, behavior=None):
    return run_round(
        registry=registry, elector_identity=identities[ELECTOR],
        scheme=SCHEME,
        producer_identities={p: identities[p] for p in routes},
        producer_routes=routes,
        consumer_identities={c: identities[c] for c in promises},
        promises=promises,
        behavior=behavior or Behavior(),
    )


class TestAccuracyProperty:
    """Theorem 3: honest rounds are always clean."""

    @settings(max_examples=20, deadline=None)
    @given(inputs_strategy(),
           st.lists(promises_strategy(), min_size=2, max_size=2))
    def test_honest_round_clean(self, registry, identities, routes,
                                promise_list):
        promises = dict(zip(CONSUMERS, promise_list))
        # Skip the (legal but degenerate) inconsistent-promise case, where
        # no conforming offer may exist (Theorem 5).
        from repro.core.promise import find_conflict
        if find_conflict(promise_list) is not None:
            return
        result = run(registry, identities, routes, promises)
        assert result.clean, f"verdicts: {result.verdicts}"


class TestVerifiabilityProperty:
    """Theorem 1: a broken promise is always detected, and the evidence
    convinces a third party (Theorem 2)."""

    @settings(max_examples=20, deadline=None)
    @given(inputs_strategy(), promises_strategy(),
           st.integers(0, K - 1), st.data())
    def test_bad_offer_detected(self, registry, identities, routes,
                                promise, offer_class, data):
        promises = {c: promise for c in CONSUMERS}
        inputs = list(routes.values())
        # Construct a non-conforming offer: a route (or ⊥) whose class is
        # strictly below some available class under the promise.
        if offer_class == 0:
            offer = NULL_ROUTE
        else:
            offer = route_in_class(1, offer_class)
            routes = dict(routes)
            routes[1] = offer  # make it a real input
            inputs = list(routes.values())
        if offer_conforms(promise, inputs, offer):
            return  # not a violation for this draw; nothing to detect
        behavior = Behavior(offer_override={c: offer for c in CONSUMERS})
        result = run(registry, identities, routes, promises,
                     behavior=behavior)
        assert not result.clean
        consumer_detections = [v for v in result.verdicts
                               if v.detector in CONSUMERS]
        assert consumer_detections
        for verdict in result.poms():
            assert validate_pom(registry, SCHEME, verdict.pom)

    @settings(max_examples=20, deadline=None)
    @given(inputs_strategy(), promises_strategy())
    def test_hiding_an_input_detected_by_its_producer(
            self, registry, identities, routes, promise):
        real = {p: r for p, r in routes.items() if r is not NULL_ROUTE}
        if not real:
            return
        victim = min(real)
        victim_class = SCHEME.classify(real[victim])

        def hide(bits):
            tampered = list(bits)
            tampered[victim_class] = 0
            return tuple(tampered)

        promises = {c: promise for c in CONSUMERS}
        behavior = Behavior(bits_tamper=hide)
        result = run(registry, identities, routes, promises,
                     behavior=behavior)
        # Some producer whose route is in the victim class must detect.
        detectors = {v.detector for v in result.verdicts}
        producers_in_class = {p for p, r in real.items()
                              if SCHEME.classify(r) == victim_class}
        assert detectors & producers_in_class
        for verdict in result.poms():
            assert validate_pom(registry, SCHEME, verdict.pom)


class TestPrivacyProperty:
    """Theorem 4: neighbors learn nothing beyond their BGP view."""

    def _consumer_revealed_bits(self, registry, identities, routes,
                                promise):
        """What one consumer actually learns: (offer, proven bits)."""
        promises = {c: promise for c in CONSUMERS}
        result = run(registry, identities, routes, promises)
        return result.offers[CONSUMERS[0]]

    def test_consumer_view_independent_of_hidden_state(self, registry,
                                                       identities):
        """Two routing states that export the same route to the consumer
        produce identical revealed information: same offer, and 0-proofs
        for the same (promised-better) classes."""
        promise = Promise(scheme=SCHEME, order=frozenset({(1, 3)}))
        chosen = route_in_class(1, 3)
        # State A: only the chosen route. State B: extra hidden routes in
        # classes the promise says nothing about (0, 2).
        state_a = {1: chosen, 2: NULL_ROUTE, 3: NULL_ROUTE}
        state_b = {1: chosen, 2: route_in_class(2, 2),
                   3: route_in_class(3, 0)}
        offers = []
        for state in (state_a, state_b):
            promises = {c: promise for c in CONSUMERS}
            result = run(registry, identities, state, promises)
            assert result.clean
            offers.append(result.offers[CONSUMERS[0]])
        assert offers[0] == offers[1]

    def test_proofs_reveal_only_challenged_bits(self, registry,
                                                identities):
        """A consumer receives proofs only for classes its promise ranks
        above its offer — never for incomparable or lower classes."""
        from repro.core.elector import Elector
        promise = Promise(scheme=SCHEME, order=frozenset({(1, 3)}))
        elector = Elector(identities[ELECTOR], registry, SCHEME,
                          {CONSUMERS[0]: promise}, seed=b"s")
        from repro.core.producer import Producer
        producer = Producer(identities[1], registry, ELECTOR, SCHEME)
        elector.receive_advert(producer.advertise(route_in_class(1, 1)))
        elector.run_commitment_phase()
        proofs = elector.proofs_for_consumer(CONSUMERS[0],
                                             route_in_class(1, 1))
        assert [p.proof.index for p in proofs] == [3]

    def test_producer_with_null_input_learns_nothing(self, registry,
                                                     identities):
        from repro.core.elector import Elector
        from repro.core.producer import Producer
        elector = Elector(identities[ELECTOR], registry, SCHEME, {},
                          seed=b"s")
        producer = Producer(identities[1], registry, ELECTOR, SCHEME)
        elector.receive_advert(producer.advertise(NULL_ROUTE))
        elector.run_commitment_phase()
        assert elector.proofs_for_producer(1) == []

    def test_commitments_unlinkable_across_rounds(self, registry,
                                                  identities):
        """Identical routing state in two rounds yields different roots
        (fresh blinding), so an observer cannot tell whether state
        changed — the Section 5.3 freshness requirement."""
        promise = Promise(scheme=SCHEME, order=frozenset({(1, 3)}))
        routes = {1: route_in_class(1, 3)}
        promises = {c: promise for c in CONSUMERS}
        roots = set()
        for round_id, seed in enumerate((b"seed-1", b"seed-2")):
            result = run_round(
                registry=registry, elector_identity=identities[ELECTOR],
                scheme=SCHEME,
                producer_identities={1: identities[1]},
                producer_routes=routes,
                consumer_identities={c: identities[c] for c in promises},
                promises=promises, seed=seed, round_id=round_id,
            )
            roots.add(result.commitments[1].root)
        assert len(roots) == 2

    def test_producer_proof_confirms_only_its_own_input(self, registry,
                                                        identities):
        """The 1-proof a producer receives is for the class of its own
        route — information it already has (Theorem 4 proof sketch)."""
        from repro.core.elector import Elector
        from repro.core.producer import Producer
        elector = Elector(identities[ELECTOR], registry, SCHEME, {},
                          seed=b"s")
        producer = Producer(identities[1], registry, ELECTOR, SCHEME)
        mine = route_in_class(1, 2)
        elector.receive_advert(producer.advertise(mine))
        # Hidden state: another producer's route in class 3.
        producer2 = Producer(identities[2], registry, ELECTOR, SCHEME)
        elector.receive_advert(producer2.advertise(route_in_class(2, 3)))
        elector.run_commitment_phase()
        proofs = elector.proofs_for_producer(1)
        assert [p.proof.index for p in proofs] == [SCHEME.classify(mine)]
        assert all(p.proof.bit == 1 for p in proofs)
