"""Tests for promises: partial orders, violations, Theorem 5, signing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.policy import Relation
from repro.bgp.route import NULL_ROUTE
from repro.core.classes import ClassScheme, relation_scheme
from repro.core.promise import InconsistentPromiseError, Promise, \
    chain_promise, find_conflict, signed_promise, total_order_promise, \
    trivial_promise, verify_signed_promise
from repro.crypto.signatures import Signer

from .conftest import ELECTOR, make_route


def flat_scheme(k):
    return ClassScheme(labels=tuple(f"c{i}" for i in range(k)),
                       classify_fn=lambda r: 0)


class TestPromiseConstruction:
    def test_transitive_closure_computed(self):
        p = Promise(scheme=flat_scheme(3), order=frozenset({(0, 1), (1, 2)}))
        assert p.prefers(2, 0)

    def test_reflexive_pair_rejected(self):
        with pytest.raises(InconsistentPromiseError):
            Promise(scheme=flat_scheme(2), order=frozenset({(0, 0)}))

    def test_cycle_rejected(self):
        with pytest.raises(InconsistentPromiseError):
            Promise(scheme=flat_scheme(2),
                    order=frozenset({(0, 1), (1, 0)}))

    def test_indirect_cycle_rejected(self):
        with pytest.raises(InconsistentPromiseError):
            Promise(scheme=flat_scheme(3),
                    order=frozenset({(0, 1), (1, 2), (2, 0)}))

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(ValueError):
            Promise(scheme=flat_scheme(2), order=frozenset({(0, 5)}))

    def test_trivial_promise_prefers_nothing(self):
        p = trivial_promise(flat_scheme(4))
        assert not any(p.prefers(i, j)
                       for i in range(4) for j in range(4))


class TestOrderQueries:
    def test_total_order_promise(self):
        p = total_order_promise(flat_scheme(4))
        assert p.prefers(3, 0)
        assert p.prefers(1, 0)
        assert not p.prefers(0, 1)
        assert p.classes_above(1) == (2, 3)
        assert p.classes_below(1) == (0,)

    def test_chain_promise_partial(self):
        # Order only classes 0 < 2; class 1 stays incomparable.
        p = chain_promise(flat_scheme(3), [0, 2])
        assert p.prefers(2, 0)
        assert not p.comparable(1, 0)
        assert not p.comparable(1, 2)
        assert p.comparable(0, 0)

    @given(st.integers(2, 6))
    def test_total_order_antisymmetric(self, k):
        p = total_order_promise(flat_scheme(k))
        for i in range(k):
            for j in range(k):
                if p.prefers(i, j):
                    assert not p.prefers(j, i)


class TestViolationSemantics:
    def test_violation_when_better_class_available(self, scheme):
        p = total_order_promise(scheme)
        customer = make_route(neighbor=1)
        peer = make_route(neighbor=2)
        assert p.is_violation(available=customer, exported=peer)

    def test_no_violation_within_one_class(self, scheme):
        p = total_order_promise(scheme)
        peer_a = make_route(neighbor=2)
        peer_b = make_route(neighbor=3)
        assert not p.is_violation(available=peer_a, exported=peer_b)

    def test_no_violation_when_incomparable(self, scheme):
        p = trivial_promise(scheme)
        assert not p.is_violation(available=make_route(neighbor=1),
                                  exported=make_route(neighbor=2))

    def test_exporting_null_when_route_owed_is_violation(self, scheme):
        p = total_order_promise(scheme)
        assert p.is_violation(available=make_route(neighbor=1),
                              exported=NULL_ROUTE)


class TestTheorem5:
    def test_conflicting_promises_found(self):
        scheme = flat_scheme(3)
        to_a = Promise(scheme=scheme, order=frozenset({(1, 2)}))
        to_b = Promise(scheme=scheme, order=frozenset({(2, 1)}))
        assert find_conflict([to_a, to_b]) is not None

    def test_consistent_promises_pass(self):
        scheme = flat_scheme(3)
        to_a = Promise(scheme=scheme, order=frozenset({(0, 1)}))
        to_b = Promise(scheme=scheme, order=frozenset({(0, 2)}))
        assert find_conflict([to_a, to_b]) is None

    def test_conflict_via_transitivity(self):
        scheme = flat_scheme(3)
        to_a = Promise(scheme=scheme, order=frozenset({(0, 1), (1, 2)}))
        to_b = Promise(scheme=scheme, order=frozenset({(2, 0)}))
        assert find_conflict([to_a, to_b]) == (0, 2)

    def test_mismatched_schemes_rejected(self):
        with pytest.raises(ValueError):
            find_conflict([trivial_promise(flat_scheme(2)),
                           trivial_promise(flat_scheme(3))])


class TestEncodingAndSigning:
    def test_encode_distinguishes_orders(self, scheme):
        assert total_order_promise(scheme).encode() != \
            trivial_promise(scheme).encode()

    def test_encode_stable(self, scheme):
        assert total_order_promise(scheme).encode() == \
            total_order_promise(scheme).encode()

    def test_signed_promise_roundtrip(self, registry, identities, scheme):
        promise = total_order_promise(scheme)
        envelope = signed_promise(Signer(identities[ELECTOR]), promise)
        assert verify_signed_promise(registry, ELECTOR, promise, envelope)

    def test_signed_promise_wrong_promise_rejected(self, registry,
                                                   identities, scheme):
        envelope = signed_promise(Signer(identities[ELECTOR]),
                                  total_order_promise(scheme))
        assert not verify_signed_promise(registry, ELECTOR,
                                         trivial_promise(scheme), envelope)

    def test_signed_promise_wrong_signer_rejected(self, registry,
                                                  identities, scheme):
        promise = total_order_promise(scheme)
        envelope = signed_promise(Signer(identities[1]), promise)
        assert not verify_signed_promise(registry, ELECTOR, promise,
                                         envelope)

    def test_str_mentions_labels(self, scheme):
        text = str(total_order_promise(scheme))
        assert "customer-routes" in text
