"""Tests for input-bit computation and flat commitments/bit proofs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.route import NULL_ROUTE
from repro.core.bits import available_classes, compute_bits, \
    conforming_offer, honest_choice, offer_conforms
from repro.core.commitment import FlatBitProof, FlatOpening, \
    verify_flat_proof
from repro.core.promise import total_order_promise, trivial_promise
from repro.crypto.rc4 import Rc4Csprng

from .conftest import make_route


class TestComputeBits:
    def test_null_class_always_set(self, scheme):
        bits = compute_bits(scheme, [], NULL_ROUTE, [])
        assert bits[scheme.classify(NULL_ROUTE)] == 1

    def test_input_classes_set(self, scheme):
        customer = make_route(neighbor=1)
        peer = make_route(neighbor=2)
        bits = compute_bits(scheme, [customer, peer], customer,
                            [total_order_promise(scheme)])
        assert bits == (1, 1, 1)

    def test_empty_classes_zero_without_promise_clause(self, scheme):
        customer = make_route(neighbor=1)
        # Chosen route in top class; no promise → classes below e stay 0
        # unless occupied.
        bits = compute_bits(scheme, [customer], customer, [])
        assert bits == (1, 0, 1)

    def test_classes_below_choice_set_by_promise(self, scheme):
        customer = make_route(neighbor=1)
        bits = compute_bits(scheme, [customer], customer,
                            [total_order_promise(scheme)])
        # non-customer class is below the chosen class per the promise.
        assert bits == (1, 1, 1)

    def test_null_inputs_are_redundant(self, scheme):
        customer = make_route(neighbor=1)
        with_null = compute_bits(scheme, [customer, NULL_ROUTE], customer,
                                 [])
        without = compute_bits(scheme, [customer], customer, [])
        assert with_null == without

    def test_mismatched_promise_scheme_rejected(self, scheme):
        from repro.core.classes import ClassScheme
        other = ClassScheme(labels=("a", "b"), classify_fn=lambda r: 0)
        with pytest.raises(ValueError):
            compute_bits(scheme, [], NULL_ROUTE,
                         [trivial_promise(other)])


class TestOfferLogic:
    def test_available_classes_includes_null(self, scheme):
        assert available_classes(scheme, []) == (0,)
        assert available_classes(scheme, [make_route(neighbor=1)]) == (0, 2)

    def test_offer_conforms_best_class(self, scheme):
        promise = total_order_promise(scheme)
        customer = make_route(neighbor=1)
        peer = make_route(neighbor=2)
        assert offer_conforms(promise, [customer, peer], customer)
        assert not offer_conforms(promise, [customer, peer], peer)
        assert not offer_conforms(promise, [customer], NULL_ROUTE)

    def test_trivial_promise_accepts_anything(self, scheme):
        promise = trivial_promise(scheme)
        customer = make_route(neighbor=1)
        assert offer_conforms(promise, [customer], NULL_ROUTE)

    def test_conforming_offer_prefers_real_route(self, scheme):
        promise = total_order_promise(scheme)
        customer = make_route(neighbor=1)
        assert conforming_offer(promise, [customer], customer) == customer

    def test_conforming_offer_falls_back_to_null(self, scheme):
        promise = trivial_promise(scheme)
        customer = make_route(neighbor=1)
        peer = make_route(neighbor=2)
        # e = peer conforms trivially here; make the promise demand more:
        strict = total_order_promise(scheme)
        # Offering peer breaks the strict promise, and ⊥ breaks it too
        # (customer available) → None.
        assert conforming_offer(strict, [customer, peer], peer) is None
        # Without the customer route, ⊥ still loses to peer → None;
        # offering the peer route itself conforms.
        assert conforming_offer(strict, [peer], peer) == peer

    def test_honest_choice_satisfies_all_promises(self, scheme):
        promise = total_order_promise(scheme)
        customer = make_route(neighbor=1)
        peer = make_route(neighbor=2)
        choice = honest_choice(scheme, [peer, customer], [promise])
        assert choice == customer

    def test_honest_choice_with_no_inputs_is_null(self, scheme):
        assert honest_choice(scheme, [], [total_order_promise(scheme)]) \
            is NULL_ROUTE

    def test_honest_choice_respects_private_rank(self, scheme):
        promise = trivial_promise(scheme)
        a = make_route(neighbor=2)
        b = make_route(neighbor=3)
        choice = honest_choice(scheme, [a, b], [promise],
                               private_rank=lambda r: -r.neighbor)
        assert choice == b


class TestFlatCommitment:
    def make_opening(self, bits, seed=b"seed"):
        return FlatOpening(bits, Rc4Csprng(seed))

    def test_root_is_20_bytes(self):
        assert len(self.make_opening([0, 1, 0]).root) == 20

    def test_proofs_verify(self):
        bits = [0, 1, 1, 0, 1]
        opening = self.make_opening(bits)
        for i, bit in enumerate(bits):
            proof = opening.prove(i)
            assert verify_flat_proof(opening.root, proof) == bit

    def test_flipped_bit_rejected(self):
        opening = self.make_opening([0, 1])
        proof = opening.prove(0)
        forged = FlatBitProof(index=0, bit=1, blinding=proof.blinding,
                              sibling_leaves=proof.sibling_leaves)
        assert verify_flat_proof(opening.root, forged) is None

    def test_wrong_blinding_rejected(self):
        opening = self.make_opening([0, 1])
        proof = opening.prove(0)
        forged = FlatBitProof(index=0, bit=0, blinding=bytes(20),
                              sibling_leaves=proof.sibling_leaves)
        assert verify_flat_proof(opening.root, forged) is None

    def test_wrong_root_rejected(self):
        opening = self.make_opening([0, 1])
        other = self.make_opening([1, 1], seed=b"other")
        assert verify_flat_proof(other.root, opening.prove(0)) is None

    def test_wrong_k_rejected(self):
        opening = self.make_opening([0, 1, 0])
        proof = opening.prove(1)
        assert verify_flat_proof(opening.root, proof, expected_k=5) is None
        assert verify_flat_proof(opening.root, proof, expected_k=3) == 1

    def test_invalid_bit_value_rejected(self):
        opening = self.make_opening([0, 1])
        proof = opening.prove(0)
        forged = FlatBitProof(index=0, bit=2, blinding=proof.blinding,
                              sibling_leaves=proof.sibling_leaves)
        assert verify_flat_proof(opening.root, forged) is None

    def test_out_of_range_index_rejected(self):
        opening = self.make_opening([0, 1])
        proof = opening.prove(1)
        forged = FlatBitProof(index=5, bit=proof.bit,
                              blinding=proof.blinding,
                              sibling_leaves=proof.sibling_leaves)
        assert verify_flat_proof(opening.root, forged) is None

    def test_same_bits_different_seed_different_root(self):
        a = self.make_opening([0, 1], seed=b"s1")
        b = self.make_opening([0, 1], seed=b"s2")
        assert a.root != b.root

    def test_rejects_empty_bits(self):
        with pytest.raises(ValueError):
            self.make_opening([])

    def test_rejects_non_binary_bits(self):
        with pytest.raises(ValueError):
            self.make_opening([0, 2])

    def test_prove_out_of_range(self):
        with pytest.raises(IndexError):
            self.make_opening([0, 1]).prove(2)

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=12),
           st.integers(0, 11))
    def test_roundtrip_property(self, bits, index):
        if index >= len(bits):
            index = index % len(bits)
        opening = self.make_opening(bits)
        proof = opening.prove(index)
        assert verify_flat_proof(opening.root, proof,
                                 expected_k=len(bits)) == bits[index]

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=8),
           st.integers(0, 7))
    def test_binding_property(self, bits, index):
        """A proof for the opposite bit value never verifies."""
        if index >= len(bits):
            index = index % len(bits)
        opening = self.make_opening(bits)
        proof = opening.prove(index)
        forged = FlatBitProof(index=index, bit=1 - proof.bit,
                              blinding=proof.blinding,
                              sibling_leaves=proof.sibling_leaves)
        assert verify_flat_proof(opening.root, forged) is None
