"""Tests for the §4.6 collusion boundary.

The paper (and its technical report) state: with colluding producers,
detection is guaranteed only for violations that exist for *any*
combination of the colluders' inputs.  These tests check both directions
— maskable violations really can be masked end to end, and unmaskable
ones are detected even with the colluder's help.
"""

import pytest

from repro.bgp.route import NULL_ROUTE
from repro.core.collusion import masking_assignment, \
    offer_conforms_with_classes, violation_detectable
from repro.core.elector import Behavior
from repro.core.promise import total_order_promise
from repro.core.protocol import run_round

from .conftest import CONSUMERS, ELECTOR, make_route


@pytest.fixture()
def promises(scheme):
    return {c: total_order_promise(scheme) for c in CONSUMERS}


class TestMaskingSearch:
    def test_no_colluders_reduces_to_plain_violation(self, scheme,
                                                     promises):
        customer = make_route(neighbor=1)   # class 2 (top)
        peer = make_route(neighbor=2)       # class 1
        # Offering the peer route while an honest customer route exists
        # is detectable: nobody can retract the customer input.
        assert violation_detectable(
            scheme, promises, honest_inputs=[customer, peer],
            colluders=[], offers={c: peer for c in CONSUMERS})

    def test_colluder_can_retract_its_own_better_route(self, scheme,
                                                       promises):
        """The better route came from the colluder: it simply pretends
        it sent nothing, and the offer conforms — undetectable."""
        customer = make_route(neighbor=1)   # colluder's (better) route
        peer = make_route(neighbor=2)       # honest producer's route
        assignment = masking_assignment(
            scheme, promises, honest_inputs=[peer], colluders=[1],
            offers={c: peer for c in CONSUMERS})
        assert assignment is not None
        assert assignment[1] is None  # the colluder claims ⊥

    def test_honest_better_route_cannot_be_masked(self, scheme,
                                                  promises):
        """The better route came from an *honest* producer: no colluder
        story removes it, so detection is guaranteed."""
        customer = make_route(neighbor=1)   # honest, acknowledged
        peer = make_route(neighbor=2)       # colluder's route
        assert violation_detectable(
            scheme, promises, honest_inputs=[customer],
            colluders=[2], offers={c: peer for c in CONSUMERS},
            required={2: scheme.classify(peer)})

    def test_required_claim_pins_exported_colluder_route(self, scheme,
                                                         promises):
        """A colluder whose own route was exported cannot also claim ⊥
        (consumers hold its signature), so it cannot mask a violation
        against a *better* class it also produced... unless the claims
        are separable."""
        peer = make_route(neighbor=2)
        # The colluder's exported peer route pins claim=class(peer); the
        # violation would need a class above ⊥ anyway — conforming.
        assignment = masking_assignment(
            scheme, promises, honest_inputs=[], colluders=[2],
            offers={c: peer for c in CONSUMERS},
            required={2: scheme.classify(peer)})
        assert assignment == {2: scheme.classify(peer)}

    def test_offer_conforms_with_classes_helper(self, scheme, promises):
        promise = promises[CONSUMERS[0]]
        assert offer_conforms_with_classes(promise, {0, 2}, 2)
        assert not offer_conforms_with_classes(promise, {0, 2}, 1)


class TestEndToEndCollusion:
    def test_masked_violation_goes_undetected(self, registry, identities,
                                              scheme, promises):
        """Protocol-level confirmation of the §4.6 caveat: the colluding
        producer advertises ⊥ instead of its customer route, the elector
        honestly runs on the lie, and nobody detects anything — yet the
        'real' best route was suppressed."""
        peer = make_route(neighbor=2)
        result = run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={1: identities[1], 2: identities[2]},
            # Producer 1 colludes: it claims ⊥ although it has a
            # customer route it would normally advertise.
            producer_routes={1: NULL_ROUTE, 2: peer},
            consumer_identities={c: identities[c] for c in CONSUMERS},
            promises=promises,
        )
        assert result.clean           # undetectable, as the paper says
        assert result.offers[CONSUMERS[0]] == peer

    def test_unmaskable_violation_still_detected(self, registry,
                                                 identities, scheme,
                                                 promises):
        """When the better route is honest, the elector + colluder pair
        still cannot escape: the honest producer's acknowledgment pins
        the input."""
        customer = make_route(neighbor=1)   # honest
        peer = make_route(neighbor=2)       # colluder
        behavior = Behavior(
            choose=lambda inputs, p: peer,
            offer_override={c: peer for c in CONSUMERS})
        result = run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={1: identities[1], 2: identities[2]},
            producer_routes={1: customer, 2: peer},
            consumer_identities={c: identities[c] for c in CONSUMERS},
            promises=promises, behavior=behavior,
        )
        assert not result.clean
        # Matches the analytical boundary:
        assert violation_detectable(
            scheme, promises, honest_inputs=[customer], colluders=[2],
            offers={c: peer for c in CONSUMERS},
            required={2: scheme.classify(peer)})
