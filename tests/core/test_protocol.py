"""End-to-end tests of one VPref round: honest runs and injected faults.

These are the executable counterparts of the Section 7.4 functionality
checks plus the commitment-phase faults from the Theorem 1 proof sketch.
"""

import pytest

from repro.bgp.route import NULL_ROUTE
from repro.core.classes import selective_export_scheme
from repro.core.elector import Behavior
from repro.core.promise import Promise, total_order_promise, \
    trivial_promise
from repro.core.protocol import run_round
from repro.core.verdict import FaultKind, validate_pom

from .conftest import CONSUMERS, ELECTOR, PRODUCERS, make_route


def run(registry, identities, scheme, routes, promises=None,
        behavior=None, **kwargs):
    promises = promises if promises is not None else {
        c: total_order_promise(scheme) for c in CONSUMERS}
    consumers = {c: identities[c] for c in promises}
    producers = {p: identities[p] for p in routes}
    return run_round(
        registry=registry,
        elector_identity=identities[ELECTOR],
        scheme=scheme,
        producer_identities=producers,
        producer_routes=routes,
        consumer_identities=consumers,
        promises=promises,
        behavior=behavior or Behavior(),
        **kwargs,
    )


@pytest.fixture()
def routes():
    return {1: make_route(neighbor=1),      # customer route
            2: make_route(neighbor=2),      # peer route
            3: NULL_ROUTE}                  # producer 3 has nothing


class TestHonestRounds:
    def test_clean_run(self, registry, identities, scheme, routes):
        result = run(registry, identities, scheme, routes)
        assert result.clean
        assert result.chosen == routes[1]  # customer route wins

    def test_offers_are_the_chosen_route(self, registry, identities,
                                         scheme, routes):
        result = run(registry, identities, scheme, routes)
        assert result.offers == {c: routes[1] for c in CONSUMERS}

    def test_all_null_inputs(self, registry, identities, scheme):
        result = run(registry, identities, scheme,
                     {p: NULL_ROUTE for p in PRODUCERS})
        assert result.clean
        assert result.chosen is NULL_ROUTE
        assert all(offer is NULL_ROUTE
                   for offer in result.offers.values())

    def test_commitment_phase_only(self, registry, identities, scheme,
                                   routes):
        result = run(registry, identities, scheme, routes, verify=False)
        assert result.clean

    def test_single_producer_single_consumer(self, registry, identities,
                                             scheme):
        result = run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={1: identities[1]},
            producer_routes={1: make_route(neighbor=1)},
            consumer_identities={6: identities[6]},
            promises={6: total_order_promise(scheme)},
        )
        assert result.clean

    def test_trivial_promises_allow_any_choice(self, registry, identities,
                                               scheme, routes):
        promises = {c: trivial_promise(scheme) for c in CONSUMERS}
        result = run(registry, identities, scheme, routes,
                     promises=promises)
        assert result.clean

    def test_mismatched_inputs_rejected(self, registry, identities,
                                        scheme):
        with pytest.raises(ValueError):
            run_round(
                registry=registry, elector_identity=identities[ELECTOR],
                scheme=scheme,
                producer_identities={1: identities[1]},
                producer_routes={2: NULL_ROUTE},
                consumer_identities={}, promises={},
            )


class TestOveraggressiveFilter:
    """Section 7.4 fault 1: a good route is filtered out.

    Modeled as the elector pretending the customer route does not exist:
    it picks the peer route and computes bits as if the customer input
    had never arrived.
    """

    def test_detected_with_pom(self, registry, identities, scheme, routes):
        from repro.core.bits import compute_bits

        def ignore_customer(inputs, promises):
            return routes[2]

        def bits_without_customer(bits):
            tampered = list(bits)
            tampered[scheme.classify(routes[1])] = 0
            return tuple(tampered)

        behavior = Behavior(choose=ignore_customer,
                            bits_tamper=bits_without_customer)
        result = run(registry, identities, scheme, routes,
                     behavior=behavior)
        assert not result.clean
        # The upstream AS (producer 1) finds no 1-proof for its class.
        producer_verdicts = result.detected_by(1)
        assert any(v.kind is FaultKind.FALSE_BIT for v in producer_verdicts)
        for verdict in result.poms():
            assert validate_pom(registry, scheme, verdict.pom)

    def test_without_bit_tampering_consumer_detects(self, registry,
                                                    identities, scheme,
                                                    routes):
        # If the elector keeps the bits honest but still offers the peer
        # route, the consumers see a 1-proof for the customer class.
        behavior = Behavior(choose=lambda inputs, promises: routes[2],
                            offer_override={c: routes[2]
                                            for c in CONSUMERS})
        result = run(registry, identities, scheme, routes,
                     behavior=behavior)
        consumer_verdicts = [v for v in result.verdicts
                             if v.detector in CONSUMERS]
        assert any(v.kind is FaultKind.BROKEN_PROMISE
                   for v in consumer_verdicts)
        for verdict in result.poms():
            assert validate_pom(registry, scheme, verdict.pom)


class TestWronglyExporting:
    """Section 7.4 fault 2: a 'not for export' route is exported anyway."""

    @pytest.fixture()
    def export_scheme(self):
        # Routes through AS 13 must never be exported.
        return selective_export_scheme(lambda r: not r.traverses(13))

    def test_detected_by_consumer(self, registry, identities,
                                  export_scheme):
        secret = make_route(neighbor=2, path=(2, 13, 9))
        routes = {2: secret}
        promises = {c: total_order_promise(export_scheme)
                    for c in CONSUMERS}
        behavior = Behavior(
            choose=lambda inputs, promises_: secret,
            offer_override={c: secret for c in CONSUMERS},
        )
        result = run(registry, identities, export_scheme, routes,
                     promises=promises, behavior=behavior)
        assert not result.clean
        # The consumer holds a 1-proof for the ⊥ class, which its promise
        # ranks above the excluded class it received.
        kinds = {v.kind for v in result.verdicts
                 if v.detector in CONSUMERS}
        assert FaultKind.BROKEN_PROMISE in kinds
        for verdict in result.poms():
            assert validate_pom(registry, export_scheme, verdict.pom)

    def test_honest_elector_filters_instead(self, registry, identities,
                                            export_scheme):
        secret = make_route(neighbor=2, path=(2, 13, 9))
        promises = {c: total_order_promise(export_scheme)
                    for c in CONSUMERS}
        result = run(registry, identities, export_scheme, {2: secret},
                     promises=promises)
        assert result.clean
        assert all(offer is NULL_ROUTE
                   for offer in result.offers.values())


class TestTamperedBitProof:
    """Section 7.4 fault 3: the elector flips a bit in a bit proof."""

    def test_detected_as_invalid_proof(self, registry, identities, scheme,
                                       routes):
        customer_class = scheme.classify(routes[1])
        behavior = Behavior(
            choose=lambda inputs, promises: routes[2],
            offer_override={c: routes[2] for c in CONSUMERS},
            tamper_proofs={(c, customer_class) for c in CONSUMERS},
        )
        result = run(registry, identities, scheme, routes,
                     behavior=behavior)
        kinds = {v.kind for v in result.verdicts
                 if v.detector in CONSUMERS}
        assert FaultKind.INVALID_PROOF in kinds
        for verdict in result.poms():
            assert validate_pom(registry, scheme, verdict.pom)


class TestEquivocation:
    def test_inconsistent_commitments_detected(self, registry, identities,
                                               scheme, routes):
        behavior = Behavior(equivocate_to={6})
        result = run(registry, identities, scheme, routes,
                     behavior=behavior)
        equivocations = [v for v in result.verdicts
                         if v.kind is FaultKind.EQUIVOCATION]
        assert equivocations
        for verdict in equivocations:
            assert verdict.accused == ELECTOR
            assert validate_pom(registry, scheme, verdict.pom)


class TestMissingMessages:
    def test_missing_ack_raises_alarm(self, registry, identities, scheme,
                                      routes):
        behavior = Behavior(skip_acks={1})
        result = run(registry, identities, scheme, routes,
                     behavior=behavior, verify=False)
        alarms = result.detected_by(1)
        assert any(v.kind is FaultKind.MISSING_MESSAGE for v in alarms)

    def test_dropped_proof_recovered_via_challenge(self, registry,
                                                   identities, scheme,
                                                   routes):
        # The elector drops producer 1's proof initially but answers the
        # relayed PROOFCHALLENGE honestly → no verdict survives.
        customer_class = scheme.classify(routes[1])
        behavior = Behavior(drop_proofs={(1, customer_class)})
        result = run(registry, identities, scheme, routes,
                     behavior=behavior)
        assert result.clean

    def test_dropped_proof_with_refusal_convicts(self, registry,
                                                 identities, scheme,
                                                 routes):
        customer_class = scheme.classify(routes[1])
        behavior = Behavior(drop_proofs={(1, customer_class)},
                            refuse_challenges=True)
        result = run(registry, identities, scheme, routes,
                     behavior=behavior)
        verdicts = result.detected_by(1)
        assert any(v.kind is FaultKind.MISSING_PROOF for v in verdicts)
        for verdict in result.poms():
            assert validate_pom(registry, scheme, verdict.pom)


class TestAccuracy:
    """Theorem 3: no verdicts or valid evidence against a correct elector."""

    def test_no_false_positives_across_input_mixes(self, registry,
                                                   identities, scheme):
        cases = [
            {1: make_route(neighbor=1), 2: make_route(neighbor=2)},
            {1: NULL_ROUTE, 2: make_route(neighbor=2)},
            {1: make_route(neighbor=1), 2: NULL_ROUTE, 3: NULL_ROUTE},
            {3: make_route(neighbor=3)},
        ]
        for routes in cases:
            result = run(registry, identities, scheme, routes)
            assert result.clean, \
                f"false positive for inputs {routes}: {result.verdicts}"

    def test_forged_pom_rejected(self, registry, identities, scheme,
                                 routes):
        """A consumer cannot doctor a clean round into evidence."""
        from repro.core.verdict import ConsumerChallengePoM
        from repro.core.promise import total_order_promise, signed_promise
        from repro.crypto.signatures import Signer

        result = run(registry, identities, scheme, routes)
        assert result.clean
        promise = total_order_promise(scheme)
        # Fabricate a challenge claiming proofs were missing.
        from repro.core.wire import OfferMsg
        offer = OfferMsg.make(Signer(identities[6]), 0, 6, routes[2], None)
        pom = ConsumerChallengePoM(
            offer=offer, promise=promise,
            signed_promise=signed_promise(Signer(identities[ELECTOR]),
                                          promise),
            commitment=result.commitments[6],
            responses=(None,), challenged_classes=(2,),
        )
        # The offer is signed by the consumer, not the elector → invalid.
        assert not validate_pom(registry, scheme, pom)
