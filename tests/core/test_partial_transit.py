"""Tests for the partial-transit promise (§3.2: 'routes to Japan')."""

import pytest

from repro.bgp.prefix import Prefix
from repro.bgp.route import NULL_ROUTE, Route
from repro.core.classes import partial_transit_scheme
from repro.core.elector import Behavior
from repro.core.promise import total_order_promise
from repro.core.protocol import run_round
from repro.core.verdict import FaultKind

from .conftest import CONSUMERS, ELECTOR, identities, registry

REGION = [Prefix.parse("43.0.0.0/8"), Prefix.parse("133.0.0.0/8")]
IN_REGION = Prefix.parse("43.1.2.0/24")
OUTSIDE = Prefix.parse("203.0.113.0/24")


def route(prefix, neighbor=1):
    return Route(prefix=prefix, as_path=(neighbor, 90 + neighbor),
                 neighbor=neighbor)


@pytest.fixture(scope="module")
def scheme():
    return partial_transit_scheme(REGION)


class TestScheme:
    def test_region_routes_above_null(self, scheme):
        assert scheme.classify(route(IN_REGION)) == 2
        assert scheme.classify(NULL_ROUTE) == 1
        assert scheme.classify(route(OUTSIDE)) == 0

    def test_region_containment_by_any_covering_prefix(self, scheme):
        assert scheme.classify(route(Prefix.parse("133.5.0.0/16"))) == 2

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            partial_transit_scheme([])


class TestProtocol:
    def run(self, registry, identities, scheme, prefix_route,
            behavior=None):
        consumer = CONSUMERS[0]
        return run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={1: identities[1]},
            producer_routes={1: prefix_route},
            consumer_identities={consumer: identities[consumer]},
            promises={consumer: total_order_promise(scheme)},
            behavior=behavior or Behavior(),
        ), consumer

    def test_region_route_delivered(self, registry, identities, scheme):
        result, consumer = self.run(registry, identities, scheme,
                                    route(IN_REGION))
        assert result.clean
        assert result.offers[consumer].prefix == IN_REGION

    def test_outside_route_filtered(self, registry, identities, scheme):
        result, consumer = self.run(registry, identities, scheme,
                                    route(OUTSIDE))
        assert result.clean
        assert result.offers[consumer] is NULL_ROUTE

    def test_withholding_region_route_detected(self, registry,
                                               identities, scheme):
        consumer = CONSUMERS[0]
        behavior = Behavior(offer_override={consumer: NULL_ROUTE})
        result, _ = self.run(registry, identities, scheme,
                             route(IN_REGION), behavior=behavior)
        kinds = {v.kind for v in result.verdicts}
        assert FaultKind.BROKEN_PROMISE in kinds

    def test_leaking_outside_route_detected(self, registry, identities,
                                            scheme):
        consumer = CONSUMERS[0]
        outside = route(OUTSIDE)
        behavior = Behavior(
            choose=lambda inputs, promises: outside,
            offer_override={consumer: outside})
        result, _ = self.run(registry, identities, scheme, outside,
                             behavior=behavior)
        kinds = {v.kind for v in result.verdicts}
        assert FaultKind.BROKEN_PROMISE in kinds
