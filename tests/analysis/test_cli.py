"""CLI acceptance tests: ``python -m repro.analysis`` exit codes.

These drive :func:`repro.analysis.cli.main` in-process with the same
argv CI uses, covering the acceptance criteria: exit 0 on the repo's
own ``src`` tree, non-zero on every rule's trigger fixture.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import load_baseline, write_baseline
from repro.analysis.cli import main

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
REPO = HERE.parents[1]
RULE_IDS = ("SPDR001", "SPDR002", "SPDR003", "SPDR004", "SPDR005")


def test_repo_src_is_clean():
    assert main([str(REPO / "src")]) == 0


def test_repo_src_is_clean_under_committed_baseline():
    baseline = REPO / "analysis-baseline.json"
    assert baseline.is_file(), "committed baseline missing"
    assert main([str(REPO / "src"), "--baseline", str(baseline)]) == 0


def test_committed_baseline_is_empty():
    # All pre-existing findings were fixed in this PR; the ratchet
    # starts at zero and may only stay there.
    assert load_baseline(str(REPO / "analysis-baseline.json")) == set()


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_fixture_exits_nonzero(rule_id):
    target = FIXTURES / rule_id.lower() / "trigger"
    assert main([str(target)]) == 1


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_exits_zero(rule_id):
    target = FIXTURES / rule_id.lower() / "clean"
    assert main([str(target)]) == 0


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_rules_filter_limits_scope():
    # The SPDR001 trigger is pure: filtering to SPDR005 finds nothing.
    target = FIXTURES / "spdr001" / "trigger"
    assert main([str(target), "--rules", "SPDR005"]) == 0
    assert main([str(target), "--rules", "SPDR001"]) == 1


def test_unknown_rule_id_rejected():
    with pytest.raises(SystemExit):
        main([str(FIXTURES / "spdr001" / "trigger"),
              "--rules", "SPDR999"])


def test_json_output_shape(capsys):
    target = FIXTURES / "spdr002" / "trigger"
    assert main([str(target), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["files_analyzed"] == 1
    assert doc["parse_errors"] == []
    assert len(doc["findings"]) == 2
    for finding in doc["findings"]:
        assert set(finding) == {"rule", "path", "line", "column",
                                "message", "fingerprint"}
        assert finding["rule"] == "SPDR002"


def test_write_baseline_then_lint_against_it(tmp_path):
    target = FIXTURES / "spdr003" / "trigger"
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--write-baseline", str(baseline)]) == 0
    # Every finding is now grandfathered: the same tree lints clean.
    assert main([str(target), "--baseline", str(baseline)]) == 0
    # But the findings still exist without the baseline.
    assert main([str(target)]) == 1


def test_check_shrunk_exit_codes(tmp_path):
    target = FIXTURES / "spdr004" / "trigger"
    full = tmp_path / "full.json"
    empty = tmp_path / "empty.json"
    assert main([str(target), "--write-baseline", str(full)]) == 0
    write_baseline(str(empty), [])
    # Shrinking (or standing still) passes; growing fails.
    assert main(["--check-shrunk", str(full), str(empty)]) == 0
    assert main(["--check-shrunk", str(full), str(full)]) == 0
    assert main(["--check-shrunk", str(empty), str(full)]) == 1


def test_check_shrunk_malformed_baseline_is_usage_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("[]")
    good = tmp_path / "good.json"
    write_baseline(str(good), [])
    assert main(["--check-shrunk", str(bad), str(good)]) == 2


def test_missing_baseline_is_usage_error(tmp_path):
    assert main([str(FIXTURES / "spdr001" / "clean"),
                 "--baseline", str(tmp_path / "absent.json")]) == 2
