"""CLI acceptance tests: ``python -m repro.analysis`` exit codes.

These drive :func:`repro.analysis.cli.main` in-process with the same
argv CI uses, covering the acceptance criteria: exit 0 on the repo's
own ``src`` tree under both engines, non-zero on every rule's trigger
fixture, and the new PR-10 surface — ``--engine``, ``--stats``,
``--explain``, ``--migrate-baseline``, and non-crashing parse-error
reporting.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import load_baseline, write_baseline
from repro.analysis.cli import main

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
REPO = HERE.parents[1]
LINT_RULES = ("SPDR001", "SPDR002", "SPDR003", "SPDR004", "SPDR005",
              "SPDR007")
FLOW_RULES = ("SPDR006", "SPDR008")


def test_repo_src_is_clean():
    assert main([str(REPO / "src")]) == 0


def test_repo_src_is_clean_under_dataflow(tmp_path):
    cache = tmp_path / "cache"
    argv = [str(REPO / "src"), "--engine", "dataflow",
            "--cache-dir", str(cache)]
    assert main(argv) == 0
    # A second run hits the pickled program cache and must agree.
    assert any(cache.iterdir())
    assert main(argv) == 0


def test_repo_benchmarks_and_examples_are_clean():
    # The ratchet covers the whole repo, not just src/ (PR-10
    # satellite); suppressions in those trees are allowed, findings
    # are not.
    assert main([str(REPO / "benchmarks"), str(REPO / "examples"),
                 "--engine", "all", "--no-cache"]) == 0


def test_repo_src_is_clean_under_committed_baseline():
    baseline = REPO / "analysis-baseline.json"
    assert baseline.is_file(), "committed baseline missing"
    assert main([str(REPO / "src"), "--baseline", str(baseline)]) == 0


def test_committed_baseline_is_empty_and_v2():
    # All pre-existing findings were fixed; the ratchet starts at zero
    # and may only stay there.  The file must use fingerprint schema
    # v2 (path, rule, snippet-hash) — v1 files are rejected.
    assert load_baseline(str(REPO / "analysis-baseline.json")) == set()


@pytest.mark.parametrize("rule_id", LINT_RULES)
def test_trigger_fixture_exits_nonzero(rule_id):
    target = FIXTURES / rule_id.lower() / "trigger"
    assert main([str(target)]) == 1


@pytest.mark.parametrize("rule_id", LINT_RULES)
def test_clean_fixture_exits_zero(rule_id):
    target = FIXTURES / rule_id.lower() / "clean"
    assert main([str(target)]) == 0


@pytest.mark.parametrize("rule_id", FLOW_RULES)
def test_dataflow_trigger_fixture_exits_nonzero(rule_id, capsys):
    target = FIXTURES / rule_id.lower() / "trigger"
    assert main([str(target), "--engine", "dataflow",
                 "--no-cache"]) == 1
    # The lint engine alone does not see whole-program flows (the
    # fixture may still trip per-file rules, e.g. SPDR004 on an
    # undeclared metric name).
    capsys.readouterr()
    main([str(target), "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert rule_id not in {f["rule"] for f in doc["findings"]}


@pytest.mark.parametrize("rule_id", FLOW_RULES)
def test_dataflow_clean_fixture_exits_zero(rule_id):
    target = FIXTURES / rule_id.lower() / "clean"
    assert main([str(target), "--engine", "dataflow",
                 "--no-cache"]) == 0


def test_engine_all_merges_both_rule_families(capsys):
    # One run over a lint trigger and a dataflow trigger with
    # --engine all reports findings from both families.
    lint = FIXTURES / "spdr001" / "trigger"
    flow = FIXTURES / "spdr006" / "trigger"
    assert main([str(lint), str(flow), "--engine", "all",
                 "--no-cache", "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in doc["findings"]}
    assert "SPDR001" in rules
    assert "SPDR006" in rules


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in LINT_RULES + FLOW_RULES:
        assert rule_id in out


def test_rules_filter_limits_scope():
    # The SPDR001 trigger is pure: filtering to SPDR005 finds nothing.
    target = FIXTURES / "spdr001" / "trigger"
    assert main([str(target), "--rules", "SPDR005"]) == 0
    assert main([str(target), "--rules", "SPDR001"]) == 1


def test_unknown_rule_id_rejected():
    with pytest.raises(SystemExit):
        main([str(FIXTURES / "spdr001" / "trigger"),
              "--rules", "SPDR999"])


def test_json_output_shape(capsys):
    target = FIXTURES / "spdr002" / "trigger"
    assert main([str(target), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["files_analyzed"] == 2
    assert doc["parse_errors"] == []
    assert len(doc["findings"]) == 4
    for finding in doc["findings"]:
        assert set(finding) == {"rule", "path", "line", "column",
                                "message", "fingerprint", "trace"}
        assert finding["rule"] == "SPDR002"
        assert finding["trace"] == []


def test_json_dataflow_findings_carry_traces(capsys):
    target = FIXTURES / "spdr006" / "trigger"
    assert main([str(target), "--engine", "dataflow", "--no-cache",
                 "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"], "trigger fixture must produce findings"
    for finding in doc["findings"]:
        assert finding["rule"] == "SPDR006"
        assert finding["trace"], "SPDR006 findings must carry a trace"


def test_parse_error_exits_nonzero_not_crash(tmp_path, capsys):
    # PR-10 satellite: a file that fails ast.parse becomes a reported
    # parse-error finding and a non-zero exit, not a traceback.
    broken = tmp_path / "repro" / "spider" / "broken.py"
    broken.parent.mkdir(parents=True)
    broken.write_text("def truncated(:\n", encoding="utf-8")
    assert main([str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "syntax error" in out
    assert "broken.py" in out


def test_parse_error_exits_nonzero_under_dataflow(tmp_path):
    broken = tmp_path / "repro" / "spider" / "broken.py"
    broken.parent.mkdir(parents=True)
    broken.write_text("class Unclosed(\n", encoding="utf-8")
    assert main([str(tmp_path), "--engine", "dataflow",
                 "--no-cache"]) == 1


def test_stats_flag_writes_per_rule_json(tmp_path):
    stats_file = tmp_path / "stats.json"
    target = FIXTURES / "spdr006" / "trigger"
    assert main([str(target), "--engine", "all", "--no-cache",
                 "--stats", str(stats_file)]) == 1
    doc = json.loads(stats_file.read_text(encoding="utf-8"))
    assert doc["engine"] == "all"
    assert doc["lint"]["seconds"] >= 0.0
    assert doc["lint"]["files"] >= 1
    assert doc["dataflow"]["seconds"] >= 0.0
    assert doc["dataflow"]["functions"] >= 2
    assert doc["dataflow"]["findings"].get("SPDR006", 0) >= 1


def test_explain_prints_path_trace(capsys):
    target = FIXTURES / "spdr006" / "trigger"
    assert main([str(target), "--engine", "dataflow", "--no-cache",
                 "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    fingerprint = doc["findings"][0]["fingerprint"]
    assert main([str(target), "--engine", "dataflow", "--no-cache",
                 "--explain", fingerprint]) == 0
    out = capsys.readouterr().out
    assert "path trace (source -> sink)" in out


def test_explain_unknown_fingerprint_exits_2():
    target = FIXTURES / "spdr006" / "clean"
    assert main([str(target), "--engine", "dataflow", "--no-cache",
                 "--explain", "deadbeefdeadbeef"]) == 2


def test_write_baseline_then_lint_against_it(tmp_path):
    target = FIXTURES / "spdr003" / "trigger"
    baseline = tmp_path / "baseline.json"
    assert main([str(target), "--write-baseline", str(baseline)]) == 0
    # Every finding is now grandfathered: the same tree lints clean.
    assert main([str(target), "--baseline", str(baseline)]) == 0
    # But the findings still exist without the baseline.
    assert main([str(target)]) == 1


def test_migrate_baseline_cli(tmp_path, capsys):
    # A v1 file is rejected by --baseline with a migration hint, and
    # --migrate-baseline rewrites it so the same run passes.
    target = FIXTURES / "spdr004" / "trigger"
    v2 = tmp_path / "v2.json"
    assert main([str(target), "--write-baseline", str(v2)]) == 0
    doc = json.loads(v2.read_text(encoding="utf-8"))
    v1 = tmp_path / "v1.json"
    v1.write_text(json.dumps({"version": 1,
                              "findings": doc["findings"]}),
                  encoding="utf-8")
    assert main([str(target), "--baseline", str(v1)]) == 2
    assert "--migrate-baseline" in capsys.readouterr().err
    assert main(["--migrate-baseline", str(v1)]) == 0
    assert main([str(target), "--baseline", str(v1)]) == 0


def test_check_shrunk_exit_codes(tmp_path):
    target = FIXTURES / "spdr004" / "trigger"
    full = tmp_path / "full.json"
    empty = tmp_path / "empty.json"
    assert main([str(target), "--write-baseline", str(full)]) == 0
    write_baseline(str(empty), [])
    # Shrinking (or standing still) passes; growing fails.
    assert main(["--check-shrunk", str(full), str(empty)]) == 0
    assert main(["--check-shrunk", str(full), str(full)]) == 0
    assert main(["--check-shrunk", str(empty), str(full)]) == 1
