"""Per-rule self-tests: every rule fires on its trigger fixture and
stays quiet on its clean fixture.

The fixtures live under ``fixtures/<rule>/<trigger|clean>/repro/...`` —
the engine normalizes paths to their ``repro/``-rooted suffix, so the
virtual modules land inside each rule's real scope and are linted by
the same code path as the production tree.
"""

from pathlib import Path

import pytest

from repro.analysis import Engine, all_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> number of findings its trigger fixture must produce.
EXPECTED_TRIGGER_COUNTS = {
    "SPDR001": 6,   # time.time, urandom, Random(), choice, secrets, set-iter
    "SPDR002": 2,   # payload ==, *_root !=
    "SPDR003": 4,   # 3 unguarded subscripts + 1 naked struct.unpack
    "SPDR004": 3,   # 2 undeclared literals + 1 computed name
    "SPDR005": 2,   # missing both flags; missing slots only
}

RULE_IDS = sorted(EXPECTED_TRIGGER_COUNTS)


def _analyze(rule_id: str, variant: str):
    target = FIXTURES / rule_id.lower() / variant
    assert target.is_dir(), f"fixture dir missing: {target}"
    return Engine(all_rules()).analyze_paths([str(target)])


def test_every_rule_has_both_fixtures():
    for rule in all_rules():
        for variant in ("trigger", "clean"):
            fixture_dir = FIXTURES / rule.rule_id.lower() / variant
            assert fixture_dir.is_dir(), fixture_dir
            assert list(fixture_dir.rglob("*.py")), fixture_dir


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_fixture_fires(rule_id):
    result = _analyze(rule_id, "trigger")
    assert not result.parse_errors
    fired = {finding.rule_id for finding in result.findings}
    # Fixtures are single-rule pure: exactly the rule under test fires.
    assert fired == {rule_id}
    assert len(result.findings) == EXPECTED_TRIGGER_COUNTS[rule_id]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_is_quiet(rule_id):
    result = _analyze(rule_id, "clean")
    assert not result.parse_errors
    assert result.findings == []
    assert result.suppressed == 0


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_findings_carry_normalized_paths(rule_id):
    result = _analyze(rule_id, "trigger")
    for finding in result.findings:
        assert finding.path.startswith("repro/"), finding.path
        assert finding.line >= 1
        assert finding.message


def test_rule_catalogue_is_complete_and_sorted():
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == RULE_IDS
    assert all(rule.title for rule in rules)
    # Fresh instances each call: no shared mutable state between runs.
    assert rules[0] is not all_rules()[0]
