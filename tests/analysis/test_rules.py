"""Per-rule self-tests, table-driven over the fixture catalogue.

Every per-file rule has three fixture variants under
``fixtures/<rule>/<variant>/repro/...``:

* ``trigger`` — at least two files that must fire exactly this rule;
* ``clean``   — at least two files that must stay silent;
* ``suppressed`` — at least one file whose violations are silenced
  in place with ``# spiderlint: disable=...`` comments.

The engine normalizes paths to their ``repro/``-rooted suffix, so the
virtual modules land inside each rule's real scope and are linted by
the same code path as the production tree.  SPDR006/008 are
whole-program dataflow rules; their fixtures are exercised in
``test_taint.py``.
"""

from pathlib import Path

import pytest

from repro.analysis import Engine, all_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> (trigger finding count, suppressed-variant silence count).
CASES = {
    "SPDR001": (8, 2),  # clocks, entropy, global RNG, set iteration
    "SPDR002": (4, 1),  # bare ==/!= on digest/label material
    "SPDR003": (7, 1),  # unguarded subscripts, naked struct.unpack
    "SPDR004": (5, 1),  # invented/computed obs metric names
    "SPDR005": (4, 1),  # wire dataclasses missing frozen/slots
    "SPDR007": (4, 1),  # shm leak, use-after-close, unsafe targets
}

RULE_IDS = sorted(CASES)
VARIANTS = ("trigger", "clean", "suppressed")


def _analyze(rule_id: str, variant: str):
    target = FIXTURES / rule_id.lower() / variant
    assert target.is_dir(), f"fixture dir missing: {target}"
    return Engine(all_rules()).analyze_paths([str(target)])


def test_every_rule_has_all_fixture_variants():
    for rule in all_rules():
        for variant in VARIANTS:
            fixture_dir = FIXTURES / rule.rule_id.lower() / variant
            assert fixture_dir.is_dir(), fixture_dir
            assert list(fixture_dir.rglob("*.py")), fixture_dir


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_fixture_has_two_files(rule_id):
    trigger = FIXTURES / rule_id.lower() / "trigger"
    assert len(list(trigger.rglob("*.py"))) >= 2, \
        f"{rule_id} needs at least two flagged fixture files"
    clean = FIXTURES / rule_id.lower() / "clean"
    assert len(list(clean.rglob("*.py"))) >= 2, \
        f"{rule_id} needs at least two clean fixture files"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_fixture_fires(rule_id):
    result = _analyze(rule_id, "trigger")
    assert not result.parse_errors
    fired = {finding.rule_id for finding in result.findings}
    # Fixtures are single-rule pure: exactly the rule under test fires.
    assert fired == {rule_id}
    assert len(result.findings) == CASES[rule_id][0]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_clean_fixture_is_quiet(rule_id):
    result = _analyze(rule_id, "clean")
    assert not result.parse_errors
    assert result.findings == []
    assert result.suppressed == 0


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_suppressed_fixture_is_silenced_not_clean(rule_id):
    result = _analyze(rule_id, "suppressed")
    assert not result.parse_errors
    assert result.findings == []
    assert result.suppressed == CASES[rule_id][1]


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_trigger_findings_carry_normalized_paths(rule_id):
    result = _analyze(rule_id, "trigger")
    for finding in result.findings:
        assert finding.path.startswith("repro/"), finding.path
        assert finding.line >= 1
        assert finding.message


def test_rule_catalogue_is_complete_and_sorted():
    rules = all_rules()
    assert [rule.rule_id for rule in rules] == RULE_IDS
    assert all(rule.title for rule in rules)
    # Fresh instances each call: no shared mutable state between runs.
    assert rules[0] is not all_rules()[0]
