"""Engine mechanics: suppressions, fingerprints, baselines, parsing."""

import json
from pathlib import Path

import pytest

from repro.analysis import Engine, all_rules, load_baseline, write_baseline
from repro.analysis.baseline import (BaselineError, baseline_version,
                                     check_shrunk, migrate_baseline)
from repro.analysis.engine import normalize_path, parse_suppressions
from repro.analysis.findings import FINGERPRINT_SCHEMA, compute_fingerprint

#: A module that trips SPDR002 once, placed in the spider scope.
VIRTUAL_PATH = "repro/spider/virtual.py"
OFFENDING = "def check(a, b):\n    return a.payload == b\n"


def _engine():
    return Engine(all_rules())


def _analyze(source, path=VIRTUAL_PATH, baseline=None):
    return _engine().analyze_source(source, path, baseline=baseline)


# ----------------------------------------------------------------------
# Suppression comments


def test_finding_without_suppression():
    result = _analyze(OFFENDING)
    assert len(result.findings) == 1
    assert result.findings[0].rule_id == "SPDR002"
    assert result.suppressed == 0


def test_trailing_suppression_silences_its_line():
    source = ("def check(a, b):\n"
              "    return a.payload == b  # spiderlint: disable=SPDR002\n")
    result = _analyze(source)
    assert result.findings == []
    assert result.suppressed == 1


def test_whole_line_comment_covers_next_line():
    source = ("def check(a, b):\n"
              "    # spiderlint: disable=SPDR002\n"
              "    return a.payload == b\n")
    result = _analyze(source)
    assert result.findings == []
    assert result.suppressed == 1


def test_bare_disable_silences_every_rule():
    source = ("def check(a, b):\n"
              "    return a.payload == b  # spiderlint: disable\n")
    result = _analyze(source)
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_for_other_rule_does_not_apply():
    source = ("def check(a, b):\n"
              "    return a.payload == b  # spiderlint: disable=SPDR001\n")
    result = _analyze(source)
    assert len(result.findings) == 1
    assert result.suppressed == 0


def test_parse_suppressions_shape():
    lines = ["x = 1  # spiderlint: disable=SPDR001,SPDR002",
             "# spiderlint: disable",
             "y = 2"]
    silenced = parse_suppressions(lines)
    assert silenced[1] == {"SPDR001", "SPDR002"}
    assert silenced[2] == {"*"}
    assert silenced[3] == {"*"}  # whole-line comment covers line below


# ----------------------------------------------------------------------
# Path normalization


@pytest.mark.parametrize("raw, expected", [
    ("src/repro/spider/wire.py", "repro/spider/wire.py"),
    ("/abs/path/src/repro/mtt/proofs.py", "repro/mtt/proofs.py"),
    ("tests/analysis/fixtures/spdr001/trigger/repro/mtt/x.py",
     "repro/mtt/x.py"),
    ("elsewhere/module.py", "elsewhere/module.py"),
])
def test_normalize_path(raw, expected):
    assert normalize_path(raw) == expected


def test_out_of_scope_path_is_quiet():
    # SPDR002 scopes to crypto/core/mtt/spider/runtime modules only.
    result = _analyze(OFFENDING, path="repro/netsim/virtual.py")
    assert result.findings == []


# ----------------------------------------------------------------------
# Fingerprints and occurrences


def test_identical_lines_get_distinct_fingerprints():
    source = ("def check(a, b):\n"
              "    return a.payload == b\n"
              "\n"
              "def check2(a, b):\n"
              "    return a.payload == b\n")
    result = _analyze(source)
    assert len(result.findings) == 2
    first, second = result.findings
    assert first.line_text == second.line_text
    assert (first.occurrence, second.occurrence) == (0, 1)
    assert first.fingerprint() != second.fingerprint()


def test_fingerprint_survives_line_shift():
    shifted = "# a new leading comment\n\n" + OFFENDING
    original = _analyze(OFFENDING).findings[0]
    moved = _analyze(shifted).findings[0]
    assert original.line != moved.line
    assert original.fingerprint() == moved.fingerprint()


def test_fingerprint_survives_reindent():
    # v2 fingerprints hash the whitespace-normalized snippet: wrapping
    # the offending line in an if-block must not change its identity.
    reindented = ("def check(a, b):\n"
                  "    if a is not None:\n"
                  "        return a.payload == b\n")
    original = _analyze(OFFENDING).findings[0]
    moved = _analyze(reindented).findings[0]
    assert original.fingerprint() == moved.fingerprint()
    # Internal-whitespace edits are also identity-preserving.
    respaced = OFFENDING.replace("a.payload == b", "a.payload  ==  b")
    assert _analyze(respaced).findings[0].fingerprint() == \
        original.fingerprint()


def test_fingerprint_schema_is_v2_and_deterministic():
    assert FINGERPRINT_SCHEMA == 2
    a = compute_fingerprint("SPDR002", "repro/spider/x.py",
                            "  return a ==  b  ", 0)
    b = compute_fingerprint("SPDR002", "repro/spider/x.py",
                            "return a == b", 0)
    assert a == b  # whitespace-normalized
    assert a != compute_fingerprint("SPDR002", "repro/spider/x.py",
                                    "return a == b", 1)


# ----------------------------------------------------------------------
# Baseline ratchet


def test_baseline_roundtrip(tmp_path):
    findings = _analyze(OFFENDING).findings
    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), findings)
    fingerprints = load_baseline(str(baseline_file))
    assert fingerprints == {finding.fingerprint() for finding in findings}

    rerun = _analyze(OFFENDING, baseline=fingerprints)
    assert rerun.findings == []
    assert rerun.baselined == len(findings)
    assert rerun.ok


def test_baseline_entries_are_auditable(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), _analyze(OFFENDING).findings)
    doc = json.loads(baseline_file.read_text())
    entry = doc["findings"][0]
    assert set(entry) == {"fingerprint", "rule", "location", "line"}
    assert entry["rule"] == "SPDR002"
    assert entry["location"].startswith(VIRTUAL_PATH)


@pytest.mark.parametrize("payload", [
    "not json at all",
    '{"version": 99, "findings": []}',
    '{"version": 1}',
    '{"version": 1, "findings": [42]}',
])
def test_malformed_baseline_rejected(tmp_path, payload):
    bad = tmp_path / "bad.json"
    bad.write_text(payload)
    with pytest.raises(BaselineError):
        load_baseline(str(bad))


def test_missing_baseline_rejected(tmp_path):
    with pytest.raises(BaselineError):
        load_baseline(str(tmp_path / "absent.json"))


def test_check_shrunk_accepts_shrinkage_and_rejects_growth(tmp_path):
    findings = _analyze(OFFENDING).findings
    old = tmp_path / "old.json"
    new_empty = tmp_path / "new_empty.json"
    write_baseline(str(old), findings)
    write_baseline(str(new_empty), [])
    assert check_shrunk(str(old), str(new_empty)) == []
    assert check_shrunk(str(old), str(old)) == []
    # Growth: the old baseline was empty, the new one is not.
    grown = check_shrunk(str(new_empty), str(old))
    assert grown == sorted(f.fingerprint() for f in findings)


# ----------------------------------------------------------------------
# Baseline migration (v1 -> v2)


def _v1_baseline(tmp_path, entries):
    path = tmp_path / "v1.json"
    path.write_text(json.dumps({"version": 1, "findings": entries}))
    return str(path)


def test_v1_baseline_is_rejected_with_migration_hint(tmp_path):
    path = _v1_baseline(tmp_path, [])
    with pytest.raises(BaselineError, match="--migrate-baseline"):
        load_baseline(path)


def test_migrate_baseline_recomputes_fingerprints(tmp_path):
    # Two identical snippets in one file: occurrences 0 and 1.
    entries = [
        {"fingerprint": "stale-v1-hash-a", "rule": "SPDR002",
         "location": "repro/spider/x.py:2",
         "line": "return a.payload == b"},
        {"fingerprint": "stale-v1-hash-b", "rule": "SPDR002",
         "location": "repro/spider/x.py:5",
         "line": "return  a.payload ==  b"},
    ]
    path = _v1_baseline(tmp_path, entries)
    assert migrate_baseline(path) == 2
    assert baseline_version(path) == 2
    fingerprints = load_baseline(path)
    expected = {
        compute_fingerprint("SPDR002", "repro/spider/x.py",
                            "return a.payload == b", 0),
        compute_fingerprint("SPDR002", "repro/spider/x.py",
                            "return a.payload == b", 1),
    }
    assert fingerprints == expected
    # Idempotent: a second run is a no-op.
    assert migrate_baseline(path) == 0


def test_migrated_baseline_matches_engine_findings(tmp_path):
    # End to end: a v1 baseline written from engine metadata matches
    # the engine's own v2 fingerprints after migration.
    double = ("def check(a, b):\n"
              "    return a.payload == b\n"
              "\n"
              "def check2(a, b):\n"
              "    return a.payload == b\n")
    findings = _analyze(double).findings
    entries = [{"fingerprint": "old", "rule": f.rule_id,
                "location": f"{f.path}:{f.line}", "line": f.line_text}
               for f in findings]
    path = _v1_baseline(tmp_path, entries)
    migrate_baseline(path)
    rerun = _analyze(double, baseline=load_baseline(path))
    assert rerun.findings == []
    assert rerun.baselined == 2


def test_migrate_rejects_entries_without_metadata(tmp_path):
    path = _v1_baseline(tmp_path, ["bare-fingerprint-string"])
    with pytest.raises(BaselineError, match="metadata"):
        migrate_baseline(path)


def test_check_shrunk_treats_v1_to_v2_as_migration(tmp_path):
    old = _v1_baseline(tmp_path, [
        {"fingerprint": "x", "rule": "SPDR002",
         "location": "repro/spider/x.py:2", "line": "a == b"}])
    new = tmp_path / "new.json"
    write_baseline(str(new), _analyze(OFFENDING).findings)
    assert check_shrunk(old, str(new)) == []


# ----------------------------------------------------------------------
# Parse failures


def test_syntax_error_is_reported_not_raised():
    result = _analyze("def broken(:\n", path="repro/spider/broken.py")
    assert result.findings == []
    assert len(result.parse_errors) == 1
    assert "syntax error" in result.parse_errors[0]
    assert not result.ok


def test_nul_byte_source_is_reported_not_raised():
    result = _analyze("x = 1\x00\n", path="repro/spider/nul.py")
    assert result.findings == []
    assert len(result.parse_errors) == 1
    # 3.11 raises SyntaxError for NUL bytes; older versions ValueError.
    # Either way it must surface as a parse error, never a crash.
    assert result.parse_errors[0].startswith("repro/spider/nul.py:")
    assert not result.ok


def test_broken_files_on_disk_are_reported_not_raised(tmp_path):
    good = tmp_path / "repro" / "spider"
    good.mkdir(parents=True)
    (good / "ok.py").write_text("x = 1\n")
    (good / "syntax.py").write_text("def broken(:\n")
    (good / "binary.py").write_bytes(b"\xff\xfe\x00 not utf8 \x80")
    result = _engine().analyze_paths([str(tmp_path)])
    assert result.files_analyzed == 2  # the undecodable file is skipped
    assert len(result.parse_errors) == 2
    joined = "\n".join(result.parse_errors)
    assert "syntax error" in joined
    assert "not valid UTF-8" in joined
    assert not result.ok
