"""Engine mechanics: suppressions, fingerprints, baselines, parsing."""

import json
from pathlib import Path

import pytest

from repro.analysis import Engine, all_rules, load_baseline, write_baseline
from repro.analysis.baseline import BaselineError, check_shrunk
from repro.analysis.engine import normalize_path, parse_suppressions

#: A module that trips SPDR002 once, placed in the spider scope.
VIRTUAL_PATH = "repro/spider/virtual.py"
OFFENDING = "def check(a, b):\n    return a.payload == b\n"


def _engine():
    return Engine(all_rules())


def _analyze(source, path=VIRTUAL_PATH, baseline=None):
    return _engine().analyze_source(source, path, baseline=baseline)


# ----------------------------------------------------------------------
# Suppression comments


def test_finding_without_suppression():
    result = _analyze(OFFENDING)
    assert len(result.findings) == 1
    assert result.findings[0].rule_id == "SPDR002"
    assert result.suppressed == 0


def test_trailing_suppression_silences_its_line():
    source = ("def check(a, b):\n"
              "    return a.payload == b  # spiderlint: disable=SPDR002\n")
    result = _analyze(source)
    assert result.findings == []
    assert result.suppressed == 1


def test_whole_line_comment_covers_next_line():
    source = ("def check(a, b):\n"
              "    # spiderlint: disable=SPDR002\n"
              "    return a.payload == b\n")
    result = _analyze(source)
    assert result.findings == []
    assert result.suppressed == 1


def test_bare_disable_silences_every_rule():
    source = ("def check(a, b):\n"
              "    return a.payload == b  # spiderlint: disable\n")
    result = _analyze(source)
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_for_other_rule_does_not_apply():
    source = ("def check(a, b):\n"
              "    return a.payload == b  # spiderlint: disable=SPDR001\n")
    result = _analyze(source)
    assert len(result.findings) == 1
    assert result.suppressed == 0


def test_parse_suppressions_shape():
    lines = ["x = 1  # spiderlint: disable=SPDR001,SPDR002",
             "# spiderlint: disable",
             "y = 2"]
    silenced = parse_suppressions(lines)
    assert silenced[1] == {"SPDR001", "SPDR002"}
    assert silenced[2] == {"*"}
    assert silenced[3] == {"*"}  # whole-line comment covers line below


# ----------------------------------------------------------------------
# Path normalization


@pytest.mark.parametrize("raw, expected", [
    ("src/repro/spider/wire.py", "repro/spider/wire.py"),
    ("/abs/path/src/repro/mtt/proofs.py", "repro/mtt/proofs.py"),
    ("tests/analysis/fixtures/spdr001/trigger/repro/mtt/x.py",
     "repro/mtt/x.py"),
    ("elsewhere/module.py", "elsewhere/module.py"),
])
def test_normalize_path(raw, expected):
    assert normalize_path(raw) == expected


def test_out_of_scope_path_is_quiet():
    # SPDR002 scopes to crypto/core/mtt/spider/runtime modules only.
    result = _analyze(OFFENDING, path="repro/netsim/virtual.py")
    assert result.findings == []


# ----------------------------------------------------------------------
# Fingerprints and occurrences


def test_identical_lines_get_distinct_fingerprints():
    source = ("def check(a, b):\n"
              "    return a.payload == b\n"
              "\n"
              "def check2(a, b):\n"
              "    return a.payload == b\n")
    result = _analyze(source)
    assert len(result.findings) == 2
    first, second = result.findings
    assert first.line_text == second.line_text
    assert (first.occurrence, second.occurrence) == (0, 1)
    assert first.fingerprint() != second.fingerprint()


def test_fingerprint_survives_line_shift():
    shifted = "# a new leading comment\n\n" + OFFENDING
    original = _analyze(OFFENDING).findings[0]
    moved = _analyze(shifted).findings[0]
    assert original.line != moved.line
    assert original.fingerprint() == moved.fingerprint()


# ----------------------------------------------------------------------
# Baseline ratchet


def test_baseline_roundtrip(tmp_path):
    findings = _analyze(OFFENDING).findings
    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), findings)
    fingerprints = load_baseline(str(baseline_file))
    assert fingerprints == {finding.fingerprint() for finding in findings}

    rerun = _analyze(OFFENDING, baseline=fingerprints)
    assert rerun.findings == []
    assert rerun.baselined == len(findings)
    assert rerun.ok


def test_baseline_entries_are_auditable(tmp_path):
    baseline_file = tmp_path / "baseline.json"
    write_baseline(str(baseline_file), _analyze(OFFENDING).findings)
    doc = json.loads(baseline_file.read_text())
    entry = doc["findings"][0]
    assert set(entry) == {"fingerprint", "rule", "location", "line"}
    assert entry["rule"] == "SPDR002"
    assert entry["location"].startswith(VIRTUAL_PATH)


@pytest.mark.parametrize("payload", [
    "not json at all",
    '{"version": 99, "findings": []}',
    '{"version": 1}',
    '{"version": 1, "findings": [42]}',
])
def test_malformed_baseline_rejected(tmp_path, payload):
    bad = tmp_path / "bad.json"
    bad.write_text(payload)
    with pytest.raises(BaselineError):
        load_baseline(str(bad))


def test_missing_baseline_rejected(tmp_path):
    with pytest.raises(BaselineError):
        load_baseline(str(tmp_path / "absent.json"))


def test_check_shrunk_accepts_shrinkage_and_rejects_growth(tmp_path):
    findings = _analyze(OFFENDING).findings
    old = tmp_path / "old.json"
    new_empty = tmp_path / "new_empty.json"
    write_baseline(str(old), findings)
    write_baseline(str(new_empty), [])
    assert check_shrunk(str(old), str(new_empty)) == []
    assert check_shrunk(str(old), str(old)) == []
    # Growth: the old baseline was empty, the new one is not.
    grown = check_shrunk(str(new_empty), str(old))
    assert grown == sorted(f.fingerprint() for f in findings)


# ----------------------------------------------------------------------
# Parse failures


def test_syntax_error_is_reported_not_raised():
    result = _analyze("def broken(:\n", path="repro/spider/broken.py")
    assert result.findings == []
    assert len(result.parse_errors) == 1
    assert "syntax error" in result.parse_errors[0]
    assert not result.ok
