"""SPDR001 trigger fixture #2: ambient clock + global RNG in bgp code.

This file is parsed by the lint self-tests, never imported.
"""

import random
import time


def decision_stamp():
    return time.time()


def jitter(routes):
    random.shuffle(routes)
    return routes
