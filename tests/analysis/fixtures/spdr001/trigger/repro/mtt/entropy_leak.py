"""SPDR001 trigger fixture: every construct below must be flagged.

This file is parsed by the lint self-tests, never imported.
"""

import os
import random
import secrets
import time


def stamp():
    return time.time()


def blind():
    return os.urandom(20)


def rng():
    return random.Random()


def pick(values):
    return random.choice(values)


def token():
    return secrets.token_bytes(20)


def encode(first, second):
    out = bytearray()
    for label in {first, second}:
        out += label
    return bytes(out)
