"""SPDR001 suppressed fixture: flagged constructs silenced in place.

This file is parsed by the lint self-tests, never imported.
"""

import os
import time


def stamp():
    return time.time()  # spiderlint: disable=SPDR001


def blind():
    # spiderlint: disable=SPDR001
    return os.urandom(20)
