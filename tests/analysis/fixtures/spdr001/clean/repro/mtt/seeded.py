"""SPDR001 clean fixture: the deterministic counterparts of entropy_leak.

This file is parsed by the lint self-tests, never imported.
"""

import random


def rng(seed):
    return random.Random(seed)


def blindings(seed, count):
    generator = random.Random(seed)
    return [generator.randbytes(20) for _ in range(count)]


def encode(labels):
    out = bytearray()
    for label in sorted(labels):
        out += label
    return bytes(out)
