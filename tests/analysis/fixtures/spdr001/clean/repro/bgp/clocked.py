"""SPDR001 clean fixture #2: clock and RNG are injected, never ambient.

This file is parsed by the lint self-tests, never imported.
"""

import random


def decision_stamp(clock):
    return clock.now()


def jitter(routes, seed):
    rng = random.Random(seed)
    rng.shuffle(routes)
    return routes
