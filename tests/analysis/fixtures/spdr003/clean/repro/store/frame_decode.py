"""SPDR003 clean fixture #2: store decoders that fail closed.

This file is parsed by the lint self-tests, never imported.
"""

import struct


def decode_header(data):
    if len(data) < 2:
        raise ValueError("truncated header")
    return data[0], data[1]


def read_length(buf):
    if len(buf) < 4:
        raise ValueError("short length field")
    try:
        return struct.unpack(">I", buf[:4])
    except struct.error as exc:
        raise ValueError("malformed length") from exc
