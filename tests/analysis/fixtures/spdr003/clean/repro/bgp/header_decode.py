"""SPDR003 clean fixture: bounds-checked decoders that fail closed.

This file is parsed by the lint self-tests, never imported.
"""

import struct


def decode_kind(data):
    if len(data) < 1:
        raise ValueError("empty buffer")
    return data[0]


class Header:

    @classmethod
    def from_bytes(cls, data):
        if len(data) < 5:
            raise ValueError("truncated header")
        return data[0], data[1:5]


def decode_pair(buf):
    if len(buf) < 4:
        raise ValueError("short pair")
    try:
        return struct.unpack(">HH", buf[:4])
    except struct.error as exc:
        raise ValueError("malformed pair") from exc
