"""SPDR003 suppressed fixture: a decoder over pre-validated input.

This file is parsed by the lint self-tests, never imported.
"""


def decode_kind(data):
    # spiderlint: disable=SPDR003
    return data[0]
