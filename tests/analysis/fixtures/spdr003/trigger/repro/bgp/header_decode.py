"""SPDR003 trigger fixture: decoders that leak IndexError/struct.error.

This file is parsed by the lint self-tests, never imported.
"""

import struct


def decode_kind(data):
    return data[0]


class Header:

    @classmethod
    def from_bytes(cls, data):
        kind = data[0]
        body = data[1:5]
        return kind, body


def decode_pair(buf):
    return struct.unpack(">HH", buf)
