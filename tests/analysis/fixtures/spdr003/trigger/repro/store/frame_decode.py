"""SPDR003 trigger fixture #2: store decoders that leak exceptions.

This file is parsed by the lint self-tests, never imported.
"""

import struct


def decode_header(data):
    return data[0], data[1]


def read_length(buf):
    return struct.unpack(">I", buf)
