"""SPDR007 clean fixture: disciplined shared-memory lifecycles.

Parsed by the lint self-tests, never imported.
"""

from multiprocessing import Process
from multiprocessing import shared_memory


def _worker(name):
    view = shared_memory.SharedMemory(name=name)
    try:
        view.buf[0] = 1
    finally:
        view.close()


def bounded_round(size):
    block = shared_memory.SharedMemory(create=True, size=size)
    try:
        block.buf[0] = 1
    finally:
        block.close()
        block.unlink()


def pooled_block(pool, size):
    block = shared_memory.SharedMemory(create=True, size=size)
    pool.adopt(block)  # ownership transfer: the pool releases it
    return None


def spawn_worker(name):
    child = Process(target=_worker, args=(name,))
    child.start()
    return child
