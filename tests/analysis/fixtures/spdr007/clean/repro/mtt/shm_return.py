"""SPDR007 clean fixture #2: a factory hands its block to the caller.

Parsed by the lint self-tests, never imported.
"""

from multiprocessing import shared_memory


def open_block(size):
    block = shared_memory.SharedMemory(create=True, size=size)
    return block
