"""SPDR007 suppressed fixture: a deliberate process-lifetime block.

Parsed by the lint self-tests, never imported.
"""

from multiprocessing import shared_memory


def persistent_block(size):
    # spiderlint: disable=SPDR007
    block = shared_memory.SharedMemory(create=True, size=size)
    block.buf[0] = 1
    return None
