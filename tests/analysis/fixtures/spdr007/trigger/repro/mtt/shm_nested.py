"""SPDR007 trigger fixture #2: a nested-closure worker entry point.

Parsed by the lint self-tests, never imported.
"""

from multiprocessing import Process
from multiprocessing import shared_memory


def launch(block_name):
    def worker():
        view = shared_memory.SharedMemory(name=block_name)
        view.close()

    child = Process(target=worker)
    child.start()
    return child
