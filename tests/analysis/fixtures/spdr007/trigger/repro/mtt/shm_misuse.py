"""SPDR007 trigger fixture: shared-memory lifecycle violations.

Parsed by the lint self-tests, never imported.
"""

from multiprocessing import Process
from multiprocessing import shared_memory


def leaky_round(size):
    block = shared_memory.SharedMemory(create=True, size=size)
    block.buf[0] = 1
    if size > 4096:
        return None  # leaks: block never closed on this path
    block.close()
    block.unlink()
    return None


def stale_write(size):
    block = shared_memory.SharedMemory(create=True, size=size)
    block.close()
    block.buf[0] = 1  # use after close
    block.unlink()


def spawn_worker(size):
    worker = Process(target=lambda: None)
    worker.start()
    return worker
