"""SPDR004 clean fixture: names come from the obs/names.py catalogue.

This file is parsed by the lint self-tests, never imported.
"""

from ..obs import names


def record(registry):
    registry.counter("spider_alarms_total").inc()
    registry.histogram(names.SIGN_SECONDS).observe(0.1)
