"""SPDR004 clean fixture #2: names resolved from the catalogue.

This file is parsed by the lint self-tests, never imported.
"""

from ..obs import names


def record(registry):
    registry.gauge(names.SIGN_SECONDS).set(0.1)
    registry.counter("spider_alarms_total").inc()
