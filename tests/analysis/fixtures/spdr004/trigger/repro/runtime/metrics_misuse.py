"""SPDR004 trigger fixture #2: invented metric names in runtime code.

This file is parsed by the lint self-tests, never imported.
"""


def record(registry, peer):
    registry.gauge("improvised_depth").set(1)
    registry.span("trace_" + peer).start()
