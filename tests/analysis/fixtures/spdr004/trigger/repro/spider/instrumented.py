"""SPDR004 trigger fixture: metric names invented at the call site.

This file is parsed by the lint self-tests, never imported.
"""


def record(registry, kind):
    registry.counter("bogus_events_total").inc()
    registry.histogram("made_up_seconds").observe(0.1)
    registry.counter("prefix_" + kind).inc()
