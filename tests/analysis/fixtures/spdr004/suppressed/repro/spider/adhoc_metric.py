"""SPDR004 suppressed fixture: an ad-hoc metric name silenced in place.

This file is parsed by the lint self-tests, never imported.
"""


def record(registry):
    registry.counter("oneoff_total").inc()  # spiderlint: disable=SPDR004
