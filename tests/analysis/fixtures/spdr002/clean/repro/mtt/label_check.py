"""SPDR002 clean fixture #2: non-secret comparisons stay bare.

This file is parsed by the lint self-tests, never imported.
"""


def depths_match(left, right):
    return left.depth == right.depth


def counts_differ(old_count, new_count):
    return old_count != new_count
