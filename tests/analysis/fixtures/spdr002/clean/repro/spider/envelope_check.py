"""SPDR002 clean fixture: constant-time or genuinely non-secret equality.

This file is parsed by the lint self-tests, never imported.
"""


def envelope_ok(envelope, expected, constant_time_eq):
    return constant_time_eq(envelope.payload, expected)


def signer_matches(envelope, asn):
    return envelope.signer == asn


def root_missing(root):
    return root is None
