"""SPDR002 suppressed fixture: a grandfathered bare comparison.

This file is parsed by the lint self-tests, never imported.
"""


def envelope_ok(envelope, expected):
    return envelope.payload == expected  # spiderlint: disable=SPDR002
