"""SPDR002 trigger fixture: bare ``==``/``!=`` on digest material.

This file is parsed by the lint self-tests, never imported.
"""


def envelope_ok(envelope, expected):
    return envelope.payload == expected


def root_changed(old_root, new_root):
    return old_root != new_root
