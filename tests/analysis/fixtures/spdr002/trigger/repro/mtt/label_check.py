"""SPDR002 trigger fixture #2: bare equality on label/digest material.

This file is parsed by the lint self-tests, never imported.
"""


def roots_match(left, right):
    return left.root_label == right.root_label


def digest_changed(old_digest, new_digest):
    return old_digest != new_digest
