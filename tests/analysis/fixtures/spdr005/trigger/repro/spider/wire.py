"""SPDR005 trigger fixture: wire dataclasses missing frozen/slots.

This file is parsed by the lint self-tests, never imported; its path
places it in the wire-module scope of the rule.
"""

from dataclasses import dataclass


@dataclass
class SpiderPing:
    sender: int
    receiver: int


@dataclass(frozen=True)
class SpiderPong:
    sender: int
