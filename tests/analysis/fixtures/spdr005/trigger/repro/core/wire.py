"""SPDR005 trigger fixture #2: core wire dataclasses missing flags.

This file is parsed by the lint self-tests, never imported; its path
places it in the wire-module scope of the rule.
"""

from dataclasses import dataclass


@dataclass
class CoreEnvelope:
    sender: int
    body: bytes


@dataclass(slots=True)
class CoreAck:
    sender: int
