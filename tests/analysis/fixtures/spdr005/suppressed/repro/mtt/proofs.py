"""SPDR005 suppressed fixture: a mutable proof type silenced in place.

This file is parsed by the lint self-tests, never imported.
"""

from dataclasses import dataclass


@dataclass
class DraftProof:  # spiderlint: disable=SPDR005
    siblings: list
