"""SPDR005 clean fixture #2: compliant evidence dataclasses.

This file is parsed by the lint self-tests, never imported.
"""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class EvidenceRecord:
    index: int
    digest: bytes
