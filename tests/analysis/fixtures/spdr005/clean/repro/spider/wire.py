"""SPDR005 clean fixture: compliant wire dataclasses.

This file is parsed by the lint self-tests, never imported.
"""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SpiderPing:
    sender: int
    receiver: int


class PlainHelper:
    """Not a dataclass — out of the rule's reach by design."""
