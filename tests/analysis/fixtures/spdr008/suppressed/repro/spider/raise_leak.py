"""SPDR008 suppressed fixture: the same leak, silenced at the raise.

Parsed by the taint self-tests, never imported.
"""

from repro.crypto.rc4 import Rc4Csprng


def check_seed(seed: bytes) -> None:
    rng = Rc4Csprng(seed)
    if len(seed) != 20:
        # spiderlint: disable=SPDR008
        raise ValueError(f"bad seed {rng.seed.hex()}")
