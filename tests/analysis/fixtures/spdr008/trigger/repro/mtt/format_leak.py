"""SPDR008 trigger fixture #2: .format() leaking node randomness.

Parsed by the taint self-tests, never imported.
"""


def check_node(node) -> None:
    if node.blinding is None:
        return
    raise RuntimeError("stale blinding {}".format(node.blinding))
