"""SPDR008 trigger fixture: secret material in exception text.

Parsed by the taint self-tests, never imported.
"""

from repro.crypto.rc4 import Rc4Csprng


def check_seed(seed: bytes) -> None:
    rng = Rc4Csprng(seed)
    if len(seed) != 20:
        raise ValueError(f"bad seed {rng.seed.hex()}")


def check_blinding(seed: bytes, expected: int) -> None:
    rng = Rc4Csprng(seed)
    blinding = rng.bitstring(20)
    if len(blinding) != expected:
        raise ValueError("bad blinding %r" % blinding)
