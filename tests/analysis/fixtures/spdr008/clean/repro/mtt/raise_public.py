"""SPDR008 clean fixture #2: public structure in exception text.

Parsed by the taint self-tests, never imported.
"""


def check_depth(depth: int, limit: int) -> None:
    if depth > limit:
        raise ValueError(f"tree depth {depth} exceeds limit {limit}")
