"""SPDR008 clean fixture: exceptions carry no secret material.

Static messages, public values, and digest-declassified values are all
fine to interpolate.  Parsed by the taint self-tests, never imported.
"""

from repro.crypto.hashing import digest
from repro.crypto.rc4 import Rc4Csprng


def check_seed(seed: bytes) -> None:
    rng = Rc4Csprng(seed)
    if len(seed) != 20:
        raise ValueError("seed must be exactly 20 bytes")
    del rng


def check_commitment(seed: bytes, expected: bytes) -> None:
    rng = Rc4Csprng(seed)
    fingerprint = digest(rng.seed)
    if fingerprint != expected:
        raise ValueError(f"commitment mismatch: {fingerprint.hex()}")
