"""SPDR006 clean fixture: randomness is declassified before the sink.

The blinding bitstring passes through ``bit_commitment`` (a declared
declassifier: H(b||x) hides both inputs) before the log append, so the
flow is sanctioned by construction.  Parsed by the taint self-tests,
never imported.
"""

from repro.crypto.hashing import bit_commitment
from repro.crypto.rc4 import Rc4Csprng


def commit_bit(log, bit: int, seed: bytes) -> bytes:
    rng = Rc4Csprng(seed)
    blinding = rng.bitstring(20)
    label = bit_commitment(bit, blinding)
    log.append({"label": label})
    return label
