"""SPDR006 clean fixture #2: only public identity attrs reach labels.

``identity.asn`` is public routing data even though ``identity`` also
carries the private key; the obs label stays clean.  Parsed by the
taint self-tests, never imported.
"""

from repro.crypto.keys import make_identity
from repro.obs.registry import get_registry


def record_node(asn: int) -> None:
    identity = make_identity(asn)
    get_registry().gauge("node_up", node=f"as{identity.asn}").set(1)
