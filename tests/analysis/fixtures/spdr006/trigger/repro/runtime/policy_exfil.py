"""SPDR006 trigger fixture #2: policy internals hit the wire codec.

Parsed by the taint self-tests, never imported.
"""

from repro.bgp.policy import gao_rexford_policy
from repro.runtime.codec import encode_message


def advertise_policy(customers, providers):
    policy = gao_rexford_policy(customers, providers)
    return encode_message(policy)
