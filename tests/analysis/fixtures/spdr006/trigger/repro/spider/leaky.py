"""SPDR006 trigger fixture: the CSPRNG seed reaches an obs label.

This is the issue's seeded violation: ``Rc4Csprng`` seed bytes routed
into a metric label through an intermediate helper, with no
declassifier on the path.  Parsed by the taint self-tests, never
imported.
"""

from repro.crypto.rc4 import Rc4Csprng
from repro.obs.registry import get_registry


def derive_tag(seed: bytes) -> str:
    rng = Rc4Csprng(seed)
    return rng.seed.hex()


def record_round(seed: bytes) -> None:
    tag = derive_tag(seed)
    get_registry().counter("rounds_total", tag=tag).inc()
