"""SPDR006 suppressed fixture: the same leak, silenced at the sink.

Findings anchor at the sink line, so that is where the suppression
comment must sit.  Parsed by the taint self-tests, never imported.
"""

from repro.crypto.rc4 import Rc4Csprng
from repro.obs.registry import get_registry


def derive_tag(seed: bytes) -> str:
    rng = Rc4Csprng(seed)
    return rng.seed.hex()


def record_round(seed: bytes) -> None:
    tag = derive_tag(seed)
    # spiderlint: disable=SPDR006
    get_registry().counter("rounds_total", tag=tag).inc()
