"""Program index and call-resolution heuristics."""

import ast

from repro.analysis.callgraph import (Program, collect_sources,
                                      load_program, source_tree_digest)

MAIN = '''\
"""Module under test."""

from repro.helpers.util import transform
from .sibling import local_thing
from ..crypto.rc4 import Rc4Csprng


def top(x):
    return helper(x)


def helper(x):
    """Helps.

    :spiderlint-contract: declassifier(helper)
    """
    return transform(x)


class Widget:

    def __init__(self, x):
        self.x = x

    def run_once(self):
        return self.refresh()

    def refresh(self):
        return self.x
'''

UTIL = '''\
def transform(x):
    return x + 1
'''

SIBLING = '''\
def local_thing():
    return 7
'''


def _program():
    return Program.from_sources([
        ("repro/helpers/main.py", MAIN),
        ("repro/helpers/util.py", UTIL),
        ("repro/helpers/sibling.py", SIBLING),
    ])


def _call(source: str) -> ast.Call:
    expr = ast.parse(source).body[0]
    assert isinstance(expr, ast.Expr)
    assert isinstance(expr.value, ast.Call)
    return expr.value


def test_functions_are_indexed_with_qualnames():
    program = _program()
    assert "repro/helpers/main.py::top" in program.functions
    assert "repro/helpers/main.py::Widget.run_once" in program.functions
    info = program.functions["repro/helpers/main.py::Widget.__init__"]
    assert info.cls == "Widget"
    assert info.params == ("self", "x")


def test_same_module_call_resolves():
    program = _program()
    caller = program.functions["repro/helpers/main.py::top"]
    targets = program.resolve_call(_call("helper(x)"), caller)
    assert [t.qualname for t in targets] == \
        ["repro/helpers/main.py::helper"]


def test_imported_call_resolves_across_modules():
    program = _program()
    caller = program.functions["repro/helpers/main.py::helper"]
    targets = program.resolve_call(_call("transform(x)"), caller)
    assert [t.qualname for t in targets] == \
        ["repro/helpers/util.py::transform"]


def test_relative_import_resolves():
    program = _program()
    caller = program.functions["repro/helpers/main.py::top"]
    targets = program.resolve_call(_call("local_thing()"), caller)
    assert [t.qualname for t in targets] == \
        ["repro/helpers/sibling.py::local_thing"]


def test_self_call_resolves_within_class():
    program = _program()
    caller = program.functions["repro/helpers/main.py::Widget.run_once"]
    targets = program.resolve_call(_call("self.refresh()"), caller)
    assert [t.qualname for t in targets] == \
        ["repro/helpers/main.py::Widget.refresh"]


def test_constructor_resolves_to_init():
    program = _program()
    caller = program.functions["repro/helpers/main.py::top"]
    targets = program.resolve_call(_call("Widget(x)"), caller)
    assert [t.qualname for t in targets] == \
        ["repro/helpers/main.py::Widget.__init__"]


def test_common_method_names_stay_unresolved():
    program = _program()
    caller = program.functions["repro/helpers/main.py::top"]
    assert program.resolve_call(_call("thing.append(x)"), caller) == []


def test_doc_markers_are_harvested():
    program = _program()
    markers = program.doc_markers()
    assert [(m.kind, m.arg) for m in markers] == \
        [("declassifier", "helper")]
    assert markers[0].qualname == "repro/helpers/main.py::helper"


def test_parse_errors_are_collected_not_raised():
    program = Program.from_sources([
        ("repro/helpers/broken.py", "def broken(:\n")])
    assert program.modules == {}
    assert len(program.parse_errors) == 1
    assert "parse error" in program.parse_errors[0]


# ----------------------------------------------------------------------
# Source digest and pickle cache


def test_source_tree_digest_is_order_independent():
    forward = [("a.py", "x = 1"), ("b.py", "y = 2")]
    assert source_tree_digest(forward) == \
        source_tree_digest(list(reversed(forward)))
    assert source_tree_digest(forward) != \
        source_tree_digest([("a.py", "x = 9"), ("b.py", "y = 2")])


def test_load_program_populates_and_reuses_cache(tmp_path):
    src = tmp_path / "repro" / "helpers"
    src.mkdir(parents=True)
    (src / "mod.py").write_text("def f(x):\n    return x\n")
    cache = tmp_path / "cache"

    first = load_program([str(tmp_path)], cache_dir=str(cache))
    assert "repro/helpers/mod.py::f" in first.functions
    pickles = list(cache.glob("program-*.pickle"))
    assert len(pickles) == 1

    # Second load hits the cache (same digest, same contents).
    again = load_program([str(tmp_path)], cache_dir=str(cache))
    assert set(again.functions) == set(first.functions)
    assert list(cache.glob("program-*.pickle")) == pickles

    # Editing a file changes the digest: a new cache entry appears.
    (src / "mod.py").write_text("def g(x):\n    return x\n")
    third = load_program([str(tmp_path)], cache_dir=str(cache))
    assert "repro/helpers/mod.py::g" in third.functions
    assert len(list(cache.glob("program-*.pickle"))) == 2


def test_corrupt_cache_entry_is_rebuilt(tmp_path):
    src = tmp_path / "repro"
    src.mkdir()
    (src / "mod.py").write_text("def f(x):\n    return x\n")
    cache = tmp_path / "cache"
    sources = collect_sources([str(tmp_path)])
    digest = source_tree_digest(sources)
    cache.mkdir()
    bad = cache / f"program-{digest[:24]}.pickle"
    bad.write_bytes(b"not a pickle")
    program = load_program([str(tmp_path)], cache_dir=str(cache))
    assert "repro/mod.py::f" in program.functions
