"""Strict-mypy gate, run wherever mypy is installed (CI always is).

The whole of ``src/repro`` ships a ``py.typed`` marker and is expected
to pass ``mypy --strict`` under the ``[tool.mypy]`` config in
pyproject.toml.  Environments without mypy (the minimal test image)
skip this module; the CI ``analysis`` job installs mypy and runs both
this test and the standalone ``mypy`` invocation.
"""

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO = Path(__file__).parents[2]


def test_src_repro_passes_strict_mypy():
    stdout, stderr, status = mypy_api.run(
        ["--config-file", str(REPO / "pyproject.toml")])
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"


def test_py_typed_marker_ships():
    assert (REPO / "src" / "repro" / "py.typed").is_file()
