"""CFG builder mechanics: block structure, edges, traversal orders."""

import ast

from repro.analysis.cfg import build_cfg, build_cfg_for_body


def _cfg(source: str):
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn)


def _reachable(cfg):
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.blocks[stack.pop()].succs:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def test_straight_line_single_path():
    cfg = _cfg("def f(x):\n    y = x\n    return y\n")
    assert cfg.exit in _reachable(cfg)


def test_if_else_joins_before_exit():
    cfg = _cfg(
        "def f(x):\n"
        "    if x:\n"
        "        y = 1\n"
        "    else:\n"
        "        y = 2\n"
        "    return y\n")
    reachable = _reachable(cfg)
    assert cfg.exit in reachable
    # Both branch bodies exist as separate blocks.
    bodies = [b for b in cfg.blocks.values()
              if any(isinstance(s, ast.Assign) for s in b.stmts)]
    assert len(bodies) == 2


def test_while_has_back_edge():
    cfg = _cfg(
        "def f(x):\n"
        "    while x:\n"
        "        x = x - 1\n"
        "    return x\n")
    preds = cfg.preds()
    # Some block has two predecessors: loop entry joins the back edge.
    assert any(len(p) >= 2 for p in preds.values())
    assert cfg.exit in _reachable(cfg)


def test_early_return_reaches_exit_directly():
    cfg = _cfg(
        "def f(x):\n"
        "    if x:\n"
        "        return 1\n"
        "    return 2\n")
    exit_preds = cfg.preds()[cfg.exit]
    assert len(exit_preds) >= 2  # both returns edge to exit


def test_try_body_edges_into_handler():
    cfg = _cfg(
        "def f(x):\n"
        "    try:\n"
        "        y = risky(x)\n"
        "    except ValueError as exc:\n"
        "        y = 0\n"
        "    return y\n")
    reachable = _reachable(cfg)
    # The handler block carries the ExceptHandler (it binds `exc`) and
    # is reachable from inside the try body.
    handler_blocks = [
        bid for bid, block in cfg.blocks.items()
        if any(isinstance(s, ast.ExceptHandler) for s in block.stmts)]
    assert handler_blocks
    assert all(bid in reachable for bid in handler_blocks)
    body_blocks = [
        block for block in cfg.blocks.values()
        if any(isinstance(s, ast.Assign) and
               isinstance(s.value, ast.Call) for s in block.stmts)]
    assert body_blocks
    assert any(hid in body_blocks[0].succs for hid in handler_blocks)
    assert cfg.exit in reachable


def test_rpo_starts_at_entry_and_covers_reachable_blocks():
    cfg = _cfg(
        "def f(x):\n"
        "    for i in x:\n"
        "        if i:\n"
        "            continue\n"
        "        break\n"
        "    return x\n")
    order = cfg.rpo()
    assert order[0] == cfg.entry
    assert set(order) == _reachable(cfg)
    assert len(order) == len(set(order))


def test_module_body_cfg():
    tree = ast.parse("x = 1\nif x:\n    y = 2\n")
    cfg = build_cfg_for_body(tree.body)
    assert cfg.exit in _reachable(cfg)
