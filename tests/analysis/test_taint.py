"""Whole-program taint engine: SPDR006/SPDR008 acceptance tests.

Three layers:

* fixture dirs under ``fixtures/spdr006`` / ``fixtures/spdr008`` run
  through :func:`analyze_paths_dataflow` exactly as the CLI does
  (trigger fires, clean is quiet, suppressions hold);
* inline virtual programs prove every *declared declassifier* is
  load-bearing: each one sits between a source and a sink in a minimal
  flow that is clean with the full registry and a finding without it;
* the repo's own ``src`` tree must analyze clean, and removing the
  commitment/signature declassifiers or the §6.5 sanctioned seed→log
  flow must surface findings — proving the engine actually traverses
  those paths rather than being vacuously quiet.
"""

from pathlib import Path

import pytest

from repro.analysis.callgraph import Program, load_program
from repro.analysis.contracts import SINK_LOG, default_registry
from repro.analysis.taint import (TaintAnalysis, analyze_paths_dataflow,
                                  build_registry)

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).parents[2]


# ----------------------------------------------------------------------
# Fixture-driven rule behavior


def _flow(rule_id: str, variant: str):
    target = FIXTURES / rule_id.lower() / variant
    assert target.is_dir(), f"fixture dir missing: {target}"
    return analyze_paths_dataflow([str(target)])


def test_spdr006_trigger_fires_with_traces():
    result = _flow("SPDR006", "trigger")
    assert not result.parse_errors
    assert {f.rule_id for f in result.findings} == {"SPDR006"}
    assert len(result.findings) == 2
    by_path = {f.path: f for f in result.findings}
    leak = by_path["repro/spider/leaky.py"]
    assert "rc4-seed" in leak.message
    assert "obs-label" in leak.message
    exfil = by_path["repro/runtime/policy_exfil.py"]
    assert "bgp-policy" in exfil.message
    assert "codec-encode" in exfil.message
    for finding in result.findings:
        assert finding.trace, "dataflow findings must carry a trace"


def test_seeded_violation_has_full_source_to_sink_trace():
    # The issue's acceptance scenario: Rc4Csprng seed bytes reach an
    # obs label through an intermediate function, and the finding's
    # trace names both the source read and the interprocedural hop.
    result = _flow("SPDR006", "trigger")
    leak = next(f for f in result.findings
                if f.path == "repro/spider/leaky.py")
    rendered = "\n".join(leak.render_trace())
    assert "source rc4-seed" in rendered
    assert "Rc4Csprng" in rendered
    assert "returned by derive_tag()" in rendered
    # The finding anchors at the sink, where suppressions must sit.
    assert leak.line == 20


def test_spdr006_clean_is_quiet():
    result = _flow("SPDR006", "clean")
    assert result.findings == []
    assert result.suppressed == 0


def test_spdr006_suppression_at_sink_line_holds():
    result = _flow("SPDR006", "suppressed")
    assert result.findings == []
    assert result.suppressed == 1


def test_spdr008_trigger_fires():
    result = _flow("SPDR008", "trigger")
    assert {f.rule_id for f in result.findings} == {"SPDR008"}
    assert len(result.findings) == 4
    details = "\n".join(f.message for f in result.findings)
    assert "f-string interpolation" in details
    assert "%-format interpolation" in details
    assert ".format() interpolation" in details


def test_spdr008_clean_is_quiet():
    result = _flow("SPDR008", "clean")
    assert result.findings == []


def test_spdr008_suppression_holds():
    result = _flow("SPDR008", "suppressed")
    assert result.findings == []
    assert result.suppressed == 1


# ----------------------------------------------------------------------
# Every declared declassifier is load-bearing

#: declassifier name -> a minimal module whose single flow is clean
#: only because of that declassifier.
LEVER_PROGRAMS = {
    "bit-commitment": '''\
def commit(log, rng, bit):
    blinding = rng.bitstring(20)
    label = bit_commitment(bit, blinding)
    log.append(label)
''',
    "merkle-label": '''\
def fingerprint(rng):
    tag = digest(rng.seed)
    return encode_message(tag)
''',
    "proof-construction": '''\
def reveal(log, node):
    proof = generate_proof(node.blinding)
    log.append(proof)
''',
    "rsa-sign": '''\
def attest(identity, payload):
    signature = sign(identity.private_key, payload)
    return encode_message(signature)
''',
    "public-key-derivation": '''\
def announce(keypair):
    pub = public_key(keypair.private_key)
    return encode_message(pub)
''',
    "policy-decision": '''\
def export(policy_engine, route):
    policy = gao_rexford_policy(policy_engine)
    verdict = policy.apply(route)
    return encode_message(verdict)
''',
    "constant-time-eq": '''\
def audit(registry, rng, expected):
    blinding = rng.bitstring(20)
    ok = constant_time_eq(blinding, expected)
    registry.counter("audits_total", outcome=ok).inc()
''',
    "census": '''\
def report(registry, rng):
    blinding = rng.bitstring(20)
    shape = census(blinding)
    registry.counter("nodes_total", shape=shape).inc()
''',
}


def _lever_program(name: str) -> Program:
    return Program.from_sources([
        (f"repro/spider/lever_{name.replace('-', '_')}.py",
         LEVER_PROGRAMS[name])])


def test_every_declared_declassifier_has_a_lever_program():
    declared = {d.name for d in default_registry().declassifiers}
    assert declared == set(LEVER_PROGRAMS), \
        "keep LEVER_PROGRAMS in sync with default_registry()"


@pytest.mark.parametrize("name", sorted(LEVER_PROGRAMS))
def test_flow_is_clean_with_declassifier_present(name):
    program = _lever_program(name)
    findings = TaintAnalysis(program, default_registry()).run()
    assert findings == [], \
        f"{name} lever program should be clean with the full registry"


@pytest.mark.parametrize("name", sorted(LEVER_PROGRAMS))
def test_deleting_declassifier_breaks_the_flow(name):
    program = _lever_program(name)
    registry = default_registry().without_declassifier(name)
    findings = TaintAnalysis(program, registry).run()
    assert findings, \
        f"removing {name} must make its legitimate flow a finding"
    assert all(f.trace for f in findings)


# ----------------------------------------------------------------------
# Attribute-level privacy model


def test_public_attrs_stop_receiver_taint_inheritance():
    source = '''\
def generate(asn):
    keypair = generate_keypair(asn)
    return keypair


def record(registry, asn):
    identity = generate(asn)
    registry.gauge("node_up", node=identity.asn).set(1)


def leak(registry, asn):
    identity = generate(asn)
    registry.gauge("node_up", key=identity.private_key).set(1)
'''
    program = Program.from_sources([("repro/spider/ids.py", source)])
    findings = TaintAnalysis(program, default_registry()).run()
    # identity.asn is public; identity.private_key is not.
    assert len(findings) == 1
    assert findings[0].line == 13


# ----------------------------------------------------------------------
# The repo's own tree (slowest tests last)


@pytest.fixture(scope="module")
def src_program():
    return load_program([str(REPO / "src")])


def test_src_tree_is_clean_under_dataflow(src_program):
    registry = build_registry(src_program)
    findings = TaintAnalysis(src_program, registry).run()
    assert findings == [], [f.render() for f in findings]


def test_src_docstring_markers_feed_the_registry(src_program):
    # The packages declare their own secrets next to the code: the
    # ``:spiderlint-contract:`` markers on gao_rexford_policy,
    # Rc4Csprng.bitstring(s), generate_keypair, commitment_seed,
    # compute_label, and encode_message are harvested by the call-graph
    # builder and folded into the contract registry.
    harvested = {(m.kind, m.arg) for m in src_program.doc_markers()}
    assert {("source", "bgp-policy"),
            ("source", "commit-randomness"),
            ("source", "rsa-private"),
            ("source", "rc4-seed"),
            ("declassifier", "merkle-label"),
            ("sink", "codec-encode")} <= harvested
    registry = build_registry(src_program)
    marker_sources = [s for s in registry.sources
                      if s.description.startswith("docstring marker")]
    assert any(s.pattern == "call:bitstring" for s in marker_sources)
    assert any(s.pattern == "call:generate_keypair"
               for s in marker_sources)


def test_removing_bit_commitment_surfaces_commitment_path(src_program):
    # The engine must actually traverse the §5.3 commitment path: with
    # the hiding property deleted from the registry, real flows in the
    # tree become findings.
    registry = build_registry(src_program) \
        .without_declassifier("bit-commitment")
    findings = TaintAnalysis(src_program, registry).run()
    assert findings, "bit-commitment must be load-bearing on src"
    assert all(f.trace for f in findings)


def test_removing_rsa_sign_surfaces_signature_path(src_program):
    registry = build_registry(src_program) \
        .without_declassifier("rsa-sign")
    findings = TaintAnalysis(src_program, registry).run()
    assert findings, "rsa-sign must be load-bearing on src"


def test_sanctioned_seed_log_flow_is_traversed(src_program):
    # §6.5: the recorder logs the raw per-commitment seed.  The flow is
    # sanctioned, so the tree is clean — but deleting the sanction must
    # surface it, proving the engine sees the flow rather than missing
    # it.
    registry = build_registry(src_program)
    registry.sanctioned = [flow for flow in registry.sanctioned
                           if flow.sink_id != SINK_LOG]
    findings = TaintAnalysis(src_program, registry).run()
    seed_hits = [f for f in findings
                 if "rc4-seed" in f.message and
                 f.path.startswith("repro/spider/")]
    assert seed_hits, \
        "the recorder's seed->log flow must be visible to the engine"


def test_stats_are_populated():
    stats = {}
    analyze_paths_dataflow([str(FIXTURES / "spdr006" / "trigger")],
                           stats=stats)
    assert stats["functions"] >= 3
    assert stats["parse_seconds"] >= 0.0
    assert stats["solve_seconds"] >= 0.0
