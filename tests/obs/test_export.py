"""Exporters: JSON snapshot schema (pinned by a golden file) and the
Prometheus text format."""

import json
import pathlib

from repro.netsim.clock import SimClock
from repro.obs.export import SCHEMA_VERSION, snapshot, to_json, \
    to_prometheus
from repro.obs.registry import Registry

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_snapshot_schema.json")
    .read_text())


def populated_registry() -> Registry:
    registry = Registry()
    registry.counter("hits", node="as5").inc(3)
    registry.counter("hits", node="as6").inc(1)
    gauge = registry.gauge("depth", node="as5")
    gauge.set(7)
    gauge.set(2)
    histogram = registry.histogram("latency")
    for value in (0.5, 1.5, 3.0, 0.0):
        histogram.observe(value)
    clock = SimClock()
    with registry.span("commit", clock, node="as5"):
        clock.advance_to(2.0)
    return registry


class TestSnapshotSchema:
    """The snapshot layout is a contract: CI fails if the exporter
    drifts from the checked-in golden schema."""

    def test_schema_version_matches_golden(self):
        assert SCHEMA_VERSION == GOLDEN["schema_version"]
        assert snapshot(Registry())["schema"] == GOLDEN["schema_version"]

    def test_top_level_keys_match_golden(self):
        snap = snapshot(populated_registry())
        assert sorted(snap.keys()) == sorted(GOLDEN["top_level_keys"])

    def test_entry_keys_match_golden(self):
        snap = snapshot(populated_registry())
        assert snap["counters"] and snap["gauges"] and \
            snap["histograms"] and snap["spans"]
        for entry in snap["counters"]:
            assert sorted(entry.keys()) == GOLDEN["counter_keys"]
        for entry in snap["gauges"]:
            assert sorted(entry.keys()) == GOLDEN["gauge_keys"]
        for entry in snap["histograms"]:
            assert sorted(entry.keys()) == GOLDEN["histogram_keys"]
        for entry in snap["spans"]:
            assert sorted(entry.keys()) == GOLDEN["span_keys"]

    def test_entries_sorted_by_name_then_labels(self):
        snap = snapshot(populated_registry())
        keys = [(e["name"], sorted(e["labels"].items()))
                for e in snap["counters"]]
        assert keys == sorted(keys)

    def test_json_roundtrip(self):
        text = to_json(populated_registry())
        assert json.loads(text)["schema"] == SCHEMA_VERSION

    def test_values_survive_export(self):
        snap = snapshot(populated_registry())
        hits = {e["labels"]["node"]: e["value"]
                for e in snap["counters"] if e["name"] == "hits"}
        assert hits == {"as5": 3, "as6": 1}
        gauge = snap["gauges"][0]
        assert gauge["value"] == 2 and gauge["high_water"] == 7
        histogram = snap["histograms"][0]
        assert histogram["count"] == 4
        span = snap["spans"][0]
        assert span["start"] == 0.0 and span["end"] == 2.0


class TestPrometheus:
    def test_type_lines_and_samples(self):
        text = to_prometheus(populated_registry())
        assert "# TYPE hits counter" in text
        assert 'hits{node="as5"} 3' in text
        assert "# TYPE depth gauge" in text
        assert 'depth{node="as5"} 2' in text
        assert 'depth_high_water{node="as5"} 7' in text
        assert "# TYPE latency histogram" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = Registry()
        histogram = registry.histogram("latency")
        for value in (0.5, 1.5, 3.0):
            histogram.observe(value)
        text = to_prometheus(registry)
        assert 'latency_bucket{le="1.0"} 1' in text
        assert 'latency_bucket{le="2.0"} 2' in text
        assert 'latency_bucket{le="4.0"} 3' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text

    def test_one_type_line_per_family(self):
        text = to_prometheus(populated_registry())
        assert text.count("# TYPE hits counter") == 1

    def test_ends_with_newline(self):
        assert to_prometheus(Registry()).endswith("\n")
