"""The cost-attribution dump: §7 aggregation and the CLI entry point."""

import json

import pytest

from repro.obs.dump import cpu_attribution, main, render_cost_table, \
    scenario_snapshot, storage_attribution, traffic_attribution


def fabricated_snapshot() -> dict:
    return {
        "schema": 1,
        "counters": [
            {"name": "cpu_seconds_total",
             "labels": {"section": "handling"}, "value": 5.0},
            {"name": "cpu_seconds_total",
             "labels": {"section": "signatures"}, "value": 3.0},
            {"name": "cpu_seconds_total",
             "labels": {"section": "mtt"}, "value": 2.0},
            {"name": "cpu_seconds_total",
             "labels": {"section": "proofgen"}, "value": 0.5},
            {"name": "traffic_bytes_total",
             "labels": {"category": "bgp"}, "value": 100},
            {"name": "traffic_bytes_total",
             "labels": {"category": "spider"}, "value": 300},
        ],
        # Storage is a gauge (trim decrements it; high_water keeps the
        # peak for §7.7).
        "gauges": [
            {"name": "storage_bytes_total",
             "labels": {"kind": "log"}, "value": 4096,
             "high_water": 4096},
        ],
        "histograms": [], "spans": [],
    }


class TestAttribution:
    def test_cpu_categories(self):
        cpu = cpu_attribution(fabricated_snapshot())
        assert cpu["signatures"] == 3.0
        assert cpu["mtt"] == 2.0
        # other = (handling - nested signatures) + non-standard sections
        assert cpu["other"] == pytest.approx(2.5)

    def test_handling_below_signatures_clamps_to_zero(self):
        snap = {"schema": 1, "counters": [
            {"name": "cpu_seconds_total",
             "labels": {"section": "handling"}, "value": 1.0},
            {"name": "cpu_seconds_total",
             "labels": {"section": "signatures"}, "value": 4.0},
        ], "gauges": [], "histograms": [], "spans": []}
        assert cpu_attribution(snap)["other"] == 0.0

    def test_traffic_and_storage(self):
        snap = fabricated_snapshot()
        assert traffic_attribution(snap) == {"bgp": 100, "spider": 300}
        assert storage_attribution(snap) == {"log": 4096}


class TestRenderedTable:
    def test_sections_present(self):
        text = render_cost_table(fabricated_snapshot())
        assert "CPU attribution (paper §7.5)" in text
        assert "signatures" in text and "mtt" in text and "other" in text
        assert "Traffic by category (paper §7.6)" in text
        assert "Durable storage by kind (paper §7.7)" in text

    def test_shares_sum_to_hundred(self):
        text = render_cost_table(fabricated_snapshot())
        assert "100.0 %" in text


class TestScenarioSnapshot:
    """Acceptance: one loopback run of the two-node scenario yields a
    snapshot whose CPU shares render in the §7.5 categories."""

    @pytest.fixture(scope="class")
    def snap(self):
        return scenario_snapshot()

    def test_cpu_attribution_is_nontrivial(self, snap):
        cpu = cpu_attribution(snap)
        assert set(cpu) == {"signatures", "mtt", "other"}
        assert cpu["signatures"] > 0
        assert cpu["mtt"] > 0

    def test_exchange_metrics_present(self, snap):
        names = {entry["name"] for entry in snap["counters"]}
        assert "signatures_made_total" in names
        assert "mtt_hashes_total" in names
        assert "transport_frames_sent_total" in names
        assert "delivery_acks_matched_total" in names
        gauge_names = {entry["name"] for entry in snap["gauges"]}
        assert "storage_bytes_total" in gauge_names

    def test_commitment_spans_recorded(self, snap):
        commits = [s for s in snap["spans"] if s["name"] == "commitment"]
        assert len(commits) == 2  # one per node
        nodes = {s["labels"]["node"] for s in commits}
        assert nodes == {"as11", "as12"}

    def test_table_renders(self, snap):
        text = render_cost_table(snap)
        assert "CPU attribution (paper §7.5)" in text
        assert "Signature operations" in text


class TestCli:
    def test_table_from_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(fabricated_snapshot()))
        assert main(["--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert "CPU attribution (paper §7.5)" in out

    def test_json_from_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(fabricated_snapshot()))
        assert main(["--snapshot", str(path), "--format", "json"]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == 1

    def test_prom_requires_live_run(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(fabricated_snapshot()))
        with pytest.raises(SystemExit):
            main(["--snapshot", str(path), "--format", "prom"])
