"""The obs/names.py catalogue is the single source of metric names.

Three guarantees: the catalogue itself is pinned (adding/removing a
name is a visible golden diff here), its constants are well-formed and
collision-free, and a live end-to-end scenario emits no name outside
it — the dynamic counterpart of lint rule SPDR004, which enforces the
same property statically at every call site.
"""

import pytest

from repro.obs import names
from repro.obs.dump import scenario_snapshot

#: Golden: every declared metric/span name.  A deliberate schema change
#: updates this list in the same diff that edits obs/names.py.
GOLDEN_NAMES = sorted([
    "signatures_made_total", "payloads_signed_total",
    "signatures_checked_total", "sign_seconds", "sign_batch_size",
    "verify_seconds",
    "mtt_labelings_total", "mtt_hashes_total", "mtt_label_seconds",
    "mtt_subtree_seconds", "mtt_pool_workers", "mtt_pool_jobs",
    "mtt_pool_utilization", "mtt_pool_spinups_total",
    "mtt_pool_spinup_seconds", "mtt_pool_installs_total",
    "mtt_pool_dispatches_total", "mtt_pool_occupancy",
    "mtt_pool_failures_total",
    "spider_alarms_total",
    "traffic_bytes_total", "cpu_seconds_total", "cpu_calls_total",
    "cpu_section_seconds", "storage_bytes_total",
    "delivery_tracked_total", "delivery_retries_total",
    "delivery_acks_matched_total", "delivery_give_ups_total",
    "delivery_pending", "retry_backoff_seconds",
    "transport_frames_sent_total", "transport_bytes_sent_total",
    "transport_frames_received_total", "transport_bytes_received_total",
    "tcp_queue_depth", "tcp_decode_errors_total",
    "runtime_inbox_depth",
    "soak_sessions", "soak_messages_sent_total",
    "soak_acks_received_total",
    "store_append_bytes_total", "store_records_total",
    "store_fsyncs_total", "store_segments",
    "store_segment_rotations_total", "store_reclaimed_bytes_total",
    "store_recovery_seconds", "store_recovered_records_total",
    "store_torn_bytes_total",
    "campaign_runs_total", "campaign_detections_total",
    "campaign_false_positives_total", "campaign_seconds",
    "campaign_disclosed_bytes",
    "commitment",
])


def _constants():
    return {key: value for key, value in vars(names).items()
            if key.isupper() and isinstance(value, str)}


def test_catalogue_matches_golden():
    assert sorted(names.ALL_METRIC_NAMES) == GOLDEN_NAMES


def test_every_constant_is_in_the_frozenset():
    constants = _constants()
    assert constants, "catalogue is empty"
    assert set(constants.values()) == set(names.ALL_METRIC_NAMES)


def test_constant_values_are_collision_free():
    constants = _constants()
    assert len(set(constants.values())) == len(constants)


def test_names_are_well_formed():
    for value in names.ALL_METRIC_NAMES:
        assert value == value.lower()
        assert " " not in value


@pytest.fixture(scope="module")
def live_snapshot():
    return scenario_snapshot()


def test_live_scenario_emits_only_catalogued_names(live_snapshot):
    emitted = set()
    for kind in ("counters", "gauges", "histograms"):
        emitted.update(entry["name"] for entry in live_snapshot[kind])
    emitted.update(entry["name"] for entry in live_snapshot["spans"])
    stray = emitted - names.ALL_METRIC_NAMES
    assert not stray, f"undeclared metric names emitted: {sorted(stray)}"
    # Sanity: the scenario actually exercises the schema.
    assert "signatures_made_total" in emitted
