"""The registry: metric identity, aggregation, spans, injection."""

import pytest

from repro.netsim.clock import SimClock
from repro.obs.registry import Registry, get_registry, next_instance_id, \
    set_registry, use_registry


class TestMetricIdentity:
    def test_same_name_and_labels_share_a_cell(self):
        registry = Registry()
        a = registry.counter("hits", node="as5")
        b = registry.counter("hits", node="as5")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_label_order_is_irrelevant(self):
        registry = Registry()
        a = registry.counter("hits", node="as5", category="bgp")
        b = registry.counter("hits", category="bgp", node="as5")
        assert a is b

    def test_different_labels_are_different_cells(self):
        registry = Registry()
        a = registry.counter("hits", node="as5")
        b = registry.counter("hits", node="as6")
        assert a is not b

    def test_kind_mismatch_raises(self):
        registry = Registry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_instance_ids_are_unique(self):
        first = next_instance_id("meter")
        second = next_instance_id("meter")
        assert first != second
        assert first.startswith("meter-")


class TestAggregation:
    def test_total_sums_across_label_sets(self):
        registry = Registry()
        registry.counter("bytes", node="as5").inc(10)
        registry.counter("bytes", node="as6").inc(5)
        assert registry.total("bytes") == 15
        assert registry.total("bytes", node="as5") == 10

    def test_label_values_groups_by_one_label(self):
        registry = Registry()
        registry.counter("bytes", node="as5", category="bgp").inc(10)
        registry.counter("bytes", node="as6", category="bgp").inc(7)
        registry.counter("bytes", node="as5", category="spider").inc(3)
        assert registry.label_values("bytes", "category") == \
            {"bgp": 17, "spider": 3}
        assert registry.label_values("bytes", "category", node="as5") == \
            {"bgp": 10, "spider": 3}

    def test_clear(self):
        registry = Registry()
        registry.counter("x").inc()
        registry.clear()
        assert registry.metrics() == []
        assert registry.total("x") == 0


class TestSpans:
    def test_span_reads_the_given_clock(self):
        registry = Registry()
        clock = SimClock(10.0)
        with registry.span("commit", clock, node="as5"):
            clock.advance_to(12.5)
        assert len(registry.spans) == 1
        span = registry.spans[0]
        assert span.start == 10.0
        assert span.end == 12.5
        assert span.labels == {"node": "as5"}

    def test_span_recorded_even_on_exception(self):
        registry = Registry()
        clock = SimClock()
        with pytest.raises(RuntimeError):
            with registry.span("boom", clock):
                raise RuntimeError("inside")
        assert len(registry.spans) == 1

    def test_ring_bounded(self):
        registry = Registry(max_spans=3)
        clock = SimClock()
        for i in range(5):
            with registry.span(f"s{i}", clock):
                pass
        assert [s.name for s in registry.spans] == ["s2", "s3", "s4"]


class TestInjection:
    def test_use_registry_swaps_and_restores(self):
        outer = get_registry()
        with use_registry() as inner:
            assert get_registry() is inner
            assert inner is not outer
        assert get_registry() is outer

    def test_use_registry_restores_on_exception(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry():
                raise RuntimeError("inside")
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        outer = get_registry()
        fresh = Registry()
        previous = set_registry(fresh)
        try:
            assert previous is outer
            assert get_registry() is fresh
        finally:
            set_registry(outer)
