"""Metric primitives: counters, gauges, log-bucketed histograms, spans."""

import pytest
from hypothesis import given, strategies as st

from repro.obs.metrics import Counter, Gauge, Histogram, Span, \
    canonical_labels


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_to_dict(self):
        counter = Counter("x", canonical_labels({"node": "as5"}))
        counter.inc(3)
        assert counter.to_dict() == {"name": "x",
                                     "labels": {"node": "as5"},
                                     "value": 3}


class TestGauge:
    def test_set_tracks_high_water(self):
        gauge = Gauge("depth")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 5

    def test_inc_dec(self):
        gauge = Gauge("depth")
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 2
        assert gauge.high_water == 3

    def test_dec_does_not_lower_high_water(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.dec(10)
        assert gauge.value == -3
        assert gauge.high_water == 7


class TestHistogram:
    def test_powers_of_two_bucketing(self):
        histogram = Histogram("h")
        for value in (1.0, 1.5, 2.0, 3.99, 4.0):
            histogram.observe(value)
        bounds = dict(histogram.bucket_bounds())
        assert bounds[2.0] == 2   # [1, 2): 1.0, 1.5
        assert bounds[4.0] == 2   # [2, 4): 2.0, 3.99
        assert bounds[8.0] == 1   # [4, 8): 4.0

    def test_underflow_bucket(self):
        histogram = Histogram("h")
        histogram.observe(0.0)
        histogram.observe(-1.0)
        histogram.observe(0.5)
        bounds = dict(histogram.bucket_bounds())
        assert bounds[0.0] == 2   # non-positive observations
        assert bounds[1.0] == 1   # [0.5, 1)
        assert histogram.count == 3

    def test_summary_stats(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0):
            histogram.observe(value)
        assert histogram.mean == pytest.approx(2.0)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert Histogram("empty").mean == 0.0

    @given(st.lists(st.floats(min_value=1e-9, max_value=1e9),
                    min_size=1, max_size=50))
    def test_every_positive_observation_lands_in_its_bucket(self, values):
        histogram = Histogram("h")
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert sum(count for _b, count in histogram.bucket_bounds()) == \
            len(values)
        # Each bucket's upper bound is a power of two and every value
        # is strictly below the bound of the bucket it landed in.
        for value in values:
            upper = min(b for b, _c in histogram.bucket_bounds()
                        if b > value)
            assert value < upper <= 2 * value + 1e-9


class TestSpan:
    def test_duration(self):
        span = Span(name="commit", start=2.0, end=5.5)
        assert span.duration == pytest.approx(3.5)

    def test_to_dict(self):
        span = Span(name="commit", start=0.0, end=1.0,
                    labels={"node": "as5"})
        assert span.to_dict() == {"name": "commit", "start": 0.0,
                                  "end": 1.0, "labels": {"node": "as5"}}


def test_canonical_labels_sorted_and_stringified():
    assert canonical_labels({"b": 2, "a": "x"}) == \
        (("a", "x"), ("b", "2"))
