#!/usr/bin/env python3
"""The §3.2 promise catalogue, one VPref round each.

Walks every promise family the paper grounds in operational practice —
local-preference tiers, selective export, partial transit,
prefer-customer, and path length with its favored-customer caveat —
showing for each how routes classify, what an honest elector offers,
and what gets detected when the promise is broken.

Run:  python examples/promise_zoo.py
"""

from repro.bgp.policy import Relation
from repro.bgp.prefix import Prefix
from repro.bgp.route import NULL_ROUTE, Route
from repro.core import Behavior, local_pref_scheme, \
    partial_transit_scheme, relation_scheme, \
    relation_with_path_length_scheme, run_round, selective_export_scheme, \
    total_order_promise
from repro.crypto.keys import KeyRegistry, make_identity

ELECTOR, P1, P2, CONSUMER = 5, 1, 2, 6
PREFIX = Prefix.parse("203.0.113.0/24")
JAPAN = Prefix.parse("43.0.0.0/8")

registry = KeyRegistry()
IDS = {asn: make_identity(asn, registry=registry, bits=512,
                          seed=300 + asn)
       for asn in (ELECTOR, P1, P2, CONSUMER)}


def demo(title, scheme, routes, behavior=None, note=""):
    result = run_round(
        registry=registry, elector_identity=IDS[ELECTOR], scheme=scheme,
        producer_identities={a: IDS[a] for a in routes},
        producer_routes=routes,
        consumer_identities={CONSUMER: IDS[CONSUMER]},
        promises={CONSUMER: total_order_promise(scheme)},
        behavior=behavior or Behavior(),
    )
    print(f"--- {title} ---")
    if note:
        print(f"    {note}")
    for asn, route in sorted(routes.items()):
        label = scheme.label_of(route)
        print(f"    input from AS{asn}: {route}  ->  class {label!r}")
    print(f"    consumer offered: {result.offers[CONSUMER]}")
    if result.clean:
        print("    verification: clean")
    else:
        for verdict in result.verdicts:
            print(f"    verification: {verdict}")
    print()
    return result


def main():
    # 1. Local-preference tiers (Figure 2 row 1: 57 of 88 ASes).
    scheme = local_pref_scheme([80, 100, 120])
    demo("set local preference (three tiers, the survey's mode)",
         scheme,
         {P1: Route(prefix=PREFIX, as_path=(P1, 9), neighbor=P1,
                    local_pref=120),
          P2: Route(prefix=PREFIX, as_path=(P2, 9), neighbor=P2,
                    local_pref=80)},
         note="higher tier wins regardless of other attributes")

    # 2. Selective export (rows 2-3): never export routes through AS 13.
    scheme = selective_export_scheme(lambda r: not r.traverses(13))
    demo("selective export (⊥ between the classes)",
         scheme,
         {P1: Route(prefix=PREFIX, as_path=(P1, 13, 9), neighbor=P1)},
         note="the only input is not-for-export: honest offer is ⊥")

    # 3. Partial transit: the consumer pays only for region routes.
    scheme = partial_transit_scheme([JAPAN])
    demo("partial transit ('routes to Japan only')",
         scheme,
         {P1: Route(prefix=Prefix.parse("43.1.2.0/24"),
                    as_path=(P1, 9), neighbor=P1)},
         note="in-region routes must be delivered; others must not")

    # 4. Prefer customer (Gao-Rexford, two classes).
    scheme = relation_scheme({P1: Relation.CUSTOMER, P2: Relation.PEER})
    demo("prefer customer",
         scheme,
         {P1: Route(prefix=PREFIX, as_path=(P1, 9), neighbor=P1),
          P2: Route(prefix=PREFIX, as_path=(P2, 9), neighbor=P2)})

    # 5. Path length — and the favored-customer caveat: each relation
    #    class splits by length, so a long customer route beating a
    #    short peer route is *not* a violation of this promise...
    scheme = relation_with_path_length_scheme(
        {P1: Relation.CUSTOMER, P2: Relation.PEER}, max_length=4)
    demo("relation + path length (the §3.2 caveat, kept honest)",
         scheme,
         {P1: Route(prefix=PREFIX, as_path=(P1, 8, 9), neighbor=P1),
          P2: Route(prefix=PREFIX, as_path=(P2, 9), neighbor=P2)},
         note="long customer route legitimately beats short peer route")

    # ...but promising bare shortest-path while preferring the customer
    # IS a violation, and gets caught:
    from repro.core import path_length_scheme
    scheme = path_length_scheme(4)
    long_customer = Route(prefix=PREFIX, as_path=(P1, 8, 9),
                          neighbor=P1)
    short_peer = Route(prefix=PREFIX, as_path=(P2, 9), neighbor=P2)
    result = demo("bare shortest-path promise + favored customer",
                  scheme,
                  {P1: long_customer, P2: short_peer},
                  behavior=Behavior(
                      choose=lambda i, p: long_customer,
                      offer_override={CONSUMER: long_customer}),
                  note="the elector prefers its customer anyway -> caught")
    assert not result.clean


if __name__ == "__main__":
    main()
