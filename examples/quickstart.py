#!/usr/bin/env python3
"""Quickstart: one VPref round for a single prefix (Figure 1's cast).

Bob (AS 5) is the elector.  He receives candidate routes to a prefix
from his upstream neighbors Charlie, Doris, and Eliot (ASes 1-3), picks
one, and offers it to his downstream neighbor Alice (AS 6).  Bob has
promised Alice that customer routes beat everything else.

We run the protocol twice: once with Bob honest, once with Bob breaking
his promise — and show that Alice detects the violation and obtains
evidence that convinces an uninvolved third party, without ever seeing
Bob's other routes.

Run:  python examples/quickstart.py
"""

from repro.bgp.policy import Relation
from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.core import Behavior, relation_scheme, run_round, \
    total_order_promise, validate_pom
from repro.crypto.keys import KeyRegistry, make_identity

PREFIX = Prefix.parse("203.0.113.0/24")
BOB = 5
CHARLIE, DORIS, ELIOT = 1, 2, 3
ALICE = 6


def main():
    # --- Setup: keys (the RPKI stand-in) and the promise. -------------
    registry = KeyRegistry()
    identities = {
        asn: make_identity(asn, registry=registry, bits=512, seed=asn)
        for asn in (BOB, CHARLIE, DORIS, ELIOT, ALICE)
    }

    # Bob's promise: customer routes > other routes > no route.
    relations = {CHARLIE: Relation.CUSTOMER, DORIS: Relation.PEER,
                 ELIOT: Relation.PEER}
    scheme = relation_scheme(relations)
    promise = total_order_promise(scheme)
    print(f"Bob's promise to Alice: {promise}\n")

    # --- The routes Bob's neighbors advertise. -------------------------
    routes = {
        CHARLIE: Route(prefix=PREFIX, as_path=(CHARLIE, 91),
                       neighbor=CHARLIE),          # customer route
        DORIS: Route(prefix=PREFIX, as_path=(DORIS, 92),
                     neighbor=DORIS),              # peer route
        ELIOT: Route(prefix=PREFIX, as_path=(ELIOT, 93, 94),
                     neighbor=ELIOT),              # longer peer route
    }

    def one_round(behavior, label):
        result = run_round(
            registry=registry,
            elector_identity=identities[BOB],
            scheme=scheme,
            producer_identities={a: identities[a] for a in routes},
            producer_routes=routes,
            consumer_identities={ALICE: identities[ALICE]},
            promises={ALICE: promise},
            behavior=behavior,
        )
        print(f"--- {label} ---")
        print(f"Bob chose:        {result.chosen}")
        print(f"Alice was offered: {result.offers[ALICE]}")
        if result.clean:
            print("Verification: clean — no AS detected anything.\n")
        else:
            for verdict in result.verdicts:
                print(f"Detected: {verdict}")
                if verdict.pom is not None:
                    convinced = validate_pom(registry, scheme,
                                             verdict.pom)
                    print(f"  third party convinced by evidence: "
                          f"{convinced}")
            print()
        return result

    # --- Round 1: Bob keeps his promise. --------------------------------
    one_round(Behavior(), "Bob is honest")

    # --- Round 2: Bob offers Alice the peer route instead. -------------
    cheating = Behavior(
        choose=lambda inputs, promises: routes[DORIS],
        offer_override={ALICE: routes[DORIS]},
    )
    result = one_round(cheating, "Bob breaks his promise")
    assert not result.clean, "the violation must be detected"

    # --- What Alice did NOT learn. --------------------------------------
    print("Privacy note: in the honest round Alice saw only her own")
    print("offer and 0-bit proofs for classes her promise ranks above")
    print("it — nothing about Doris's or Eliot's routes existing.")


if __name__ == "__main__":
    main()
