#!/usr/bin/env python3
"""Selective export (§3.2): a never-export promise with ⊥ in the middle.

A provider tags certain routes 'not for export'.  In VPref terms the
route space splits into three indifference classes ordered

    exportable-routes  >  ⊥ (no route)  >  excluded-routes

so that (a) handing a consumer an excluded route breaks the promise
(⊥ was available and strictly better), and (b) withholding an
exportable route also breaks it (the route was strictly better than ⊥).
The original sender can confirm its route was not exported; the
recipient can be sure nothing it was entitled to was falsely excluded.

Run:  python examples/selective_export.py
"""

from repro.bgp.prefix import Prefix
from repro.bgp.route import NULL_ROUTE, Route
from repro.core import Behavior, run_round, selective_export_scheme, \
    total_order_promise, validate_pom
from repro.crypto.keys import KeyRegistry, make_identity

PREFIX = Prefix.parse("198.51.100.0/24")
ELECTOR, PRODUCER, CONSUMER = 5, 1, 6
SECRET_AS = 13  # routes through AS 13 must never be exported


def main():
    registry = KeyRegistry()
    identities = {
        asn: make_identity(asn, registry=registry, bits=512,
                           seed=100 + asn)
        for asn in (ELECTOR, PRODUCER, CONSUMER)
    }

    scheme = selective_export_scheme(
        lambda route: not route.traverses(SECRET_AS))
    promise = total_order_promise(scheme)
    print(f"Classes: {', '.join(scheme.labels)}")
    print(f"Promise: {promise}\n")

    secret_route = Route(prefix=PREFIX, as_path=(PRODUCER, SECRET_AS, 99),
                         neighbor=PRODUCER)
    public_route = Route(prefix=PREFIX, as_path=(PRODUCER, 98, 99),
                         neighbor=PRODUCER)

    def one_round(route, behavior, label):
        result = run_round(
            registry=registry, elector_identity=identities[ELECTOR],
            scheme=scheme,
            producer_identities={PRODUCER: identities[PRODUCER]},
            producer_routes={PRODUCER: route},
            consumer_identities={CONSUMER: identities[CONSUMER]},
            promises={CONSUMER: promise},
            behavior=behavior,
        )
        print(f"--- {label} ---")
        print(f"input route:   {route}")
        print(f"consumer got:  {result.offers[CONSUMER]}")
        if result.clean:
            print("verification:  clean\n")
        else:
            for verdict in result.verdicts:
                note = ""
                if verdict.pom is not None:
                    note = (" [evidence accepted: "
                            f"{validate_pom(registry, scheme, verdict.pom)}]")
                print(f"verification:  {verdict}{note}")
            print()
        return result

    # 1. A public route flows through normally.
    one_round(public_route, Behavior(), "exportable route, honest")

    # 2. An excluded route is correctly replaced by ⊥.
    result = one_round(secret_route, Behavior(),
                       "excluded route, honest (filtered)")
    assert result.offers[CONSUMER] is NULL_ROUTE

    # 3. The elector wrongly exports the excluded route: the consumer
    #    holds a 1-proof for the ⊥ class, which its promise ranks above
    #    what it received.
    cheating = Behavior(
        choose=lambda inputs, promises: secret_route,
        offer_override={CONSUMER: secret_route},
    )
    result = one_round(secret_route, cheating,
                       "excluded route, wrongly exported")
    assert not result.clean

    # 4. The elector suppresses a route the consumer was entitled to:
    #    a 1-proof for the exportable class convicts it.
    withholding = Behavior(offer_override={CONSUMER: NULL_ROUTE})
    result = one_round(public_route, withholding,
                       "exportable route, falsely excluded")
    assert not result.clean


if __name__ == "__main__":
    main()
