#!/usr/bin/env python3
"""SPIDeR on the Figure 5 topology: the full companion-protocol stack.

Builds the paper's 10-AS evaluation network, injects a synthetic
RouteViews-style trace at AS 2, runs SPIDeR recorders everywhere with
periodic commitments, triggers verification of AS 5 by all five of its
neighbors, and finally injects the §7.4 over-aggressive-filter fault to
show detection end to end.  Prints the overhead numbers the paper's
evaluation reports (CPU split, traffic rates, storage).

Run:  python examples/spider_network.py        (~30 s)
"""

from repro.harness.experiments import proof_experiment, \
    run_replay_experiment
from repro.harness.reporting import format_bytes, format_rate, \
    render_table
from repro.faults.scenarios import overaggressive_filter
from repro.netsim.topology import FOCUS_AS


def main():
    print("Running the §7.2 methodology at 1/500 scale "
          "(setup period, then bursty replay with commitments)...\n")
    replay = run_replay_experiment(scale=0.002, k=10)

    breakdown = replay.cpu_breakdown()
    print(render_table(
        "Recorder CPU at AS 5 (replay period)",
        ["section", "seconds"],
        [("signatures", breakdown["signatures"]),
         ("MTT generation", breakdown["mtt"]),
         ("other", breakdown["other"]),
         ("NetReview would cost", replay.netreview_cpu())]))
    print()
    print(render_table(
        "Traffic at AS 5",
        ["stream", "rate"],
        [("BGP", format_rate(replay.bgp_rate_bps())),
         ("SPIDeR", format_rate(replay.spider_rate_bps()))]))
    print()
    print(render_table(
        "Storage at AS 5",
        ["component", "bytes"],
        [("log (replay period)",
          format_bytes(replay.log_bytes_replay())),
         ("routing snapshot", format_bytes(replay.snapshot_bytes())),
         ("per commitment",
          format_bytes(replay.commitment_bytes()
                       / max(1, replay.commitments_made)))]))

    print("\nVerifying AS 5's last commitment from all five neighbors...")
    proofs = proof_experiment(replay)
    rows = [(f"AS{n}", format_bytes(proofs.per_neighbor_bytes[n]),
             proofs.per_neighbor_count[n],
             f"{proofs.check_seconds[n]:.3f}s")
            for n in sorted(proofs.per_neighbor_bytes)]
    print(render_table(
        "Proof sets",
        ["neighbor", "size", "proofs", "check time"], rows))
    print(f"\nAll checks clean: {proofs.checks_ok}")
    print(f"Single-prefix ('route to Google') proof: "
          f"{format_bytes(proofs.single_prefix_bytes)} in "
          f"{proofs.single_prefix_seconds * 1000:.1f} ms")

    print("\nInjecting the §7.4 over-aggressive-filter fault at AS 5...")
    result = overaggressive_filter()
    for asn, kinds in sorted(result.detectors.items()):
        names = ", ".join(sorted(k.value for k in kinds))
        print(f"  detected by AS{asn}: {names}")
    assert result.detected


if __name__ == "__main__":
    main()
