#!/usr/bin/env python3
"""SPIDeR on the Figure 5 topology: the full companion-protocol stack.

Builds the paper's 10-AS evaluation network, injects a synthetic
RouteViews-style trace at AS 2, runs SPIDeR recorders everywhere with
periodic commitments, triggers verification of AS 5 by all five of its
neighbors, and finally injects the §7.4 over-aggressive-filter fault to
show detection end to end.  Prints the overhead numbers the paper's
evaluation reports (CPU split, traffic rates, storage).

Run:  python examples/spider_network.py        (~30 s)

The ``--transport`` flag picks where SPIDeR messages travel:

* ``sim`` (default) — the deterministic event-loop simulator, full
  Figure 5 experiment as described above;
* ``loopback`` — the two-node canonical exchange over the in-process
  runtime transport (real codec + framing, no sockets);
* ``tcp`` — the same exchange over real localhost TCP.  With no
  ``--role`` this process spawns its peer as a second OS process; with
  ``--role a|b`` it runs one side so you can drive both terminals
  yourself (see README "Two-process TCP demo").

The loopback and tcp paths must print identical log digests — that is
the runtime layer's acceptance property.
"""

import argparse

from repro.harness.experiments import proof_experiment, \
    run_replay_experiment
from repro.harness.reporting import format_bytes, format_rate, \
    render_table
from repro.faults.scenarios import overaggressive_filter
from repro.netsim.topology import FOCUS_AS


def run_sim():
    print("Running the §7.2 methodology at 1/500 scale "
          "(setup period, then bursty replay with commitments)...\n")
    replay = run_replay_experiment(scale=0.002, k=10)

    breakdown = replay.cpu_breakdown()
    print(render_table(
        "Recorder CPU at AS 5 (replay period)",
        ["section", "seconds"],
        [("signatures", breakdown["signatures"]),
         ("MTT generation", breakdown["mtt"]),
         ("other", breakdown["other"]),
         ("NetReview would cost", replay.netreview_cpu())]))
    print()
    print(render_table(
        "Traffic at AS 5",
        ["stream", "rate"],
        [("BGP", format_rate(replay.bgp_rate_bps())),
         ("SPIDeR", format_rate(replay.spider_rate_bps()))]))
    print()
    print(render_table(
        "Storage at AS 5",
        ["component", "bytes"],
        [("log (replay period)",
          format_bytes(replay.log_bytes_replay())),
         ("routing snapshot", format_bytes(replay.snapshot_bytes())),
         ("per commitment",
          format_bytes(replay.commitment_bytes()
                       / max(1, replay.commitments_made)))]))

    print("\nVerifying AS 5's last commitment from all five neighbors...")
    proofs = proof_experiment(replay)
    rows = [(f"AS{n}", format_bytes(proofs.per_neighbor_bytes[n]),
             proofs.per_neighbor_count[n],
             f"{proofs.check_seconds[n]:.3f}s")
            for n in sorted(proofs.per_neighbor_bytes)]
    print(render_table(
        "Proof sets",
        ["neighbor", "size", "proofs", "check time"], rows))
    print(f"\nAll checks clean: {proofs.checks_ok}")
    print(f"Single-prefix ('route to Google') proof: "
          f"{format_bytes(proofs.single_prefix_bytes)} in "
          f"{proofs.single_prefix_seconds * 1000:.1f} ms")

    print("\nInjecting the §7.4 over-aggressive-filter fault at AS 5...")
    result = overaggressive_filter()
    for asn, kinds in sorted(result.detectors.items()):
        names = ", ".join(sorted(k.value for k in kinds))
        print(f"  detected by AS{asn}: {names}")
    assert result.detected


def print_summary(summary):
    print(f"  AS {summary['asn']}: {summary['entries']} log entries, "
          f"log digest {summary['log_digest'][:16]}..., "
          f"commitment root {summary['own_root'][:16]}...")


def run_loopback():
    from repro.runtime.scenario import run_loopback_exchange
    print("Canonical announce → ack → commitment exchange over the "
          "in-process loopback transport:\n")
    summary_a, summary_b = run_loopback_exchange()
    for summary in (summary_a, summary_b):
        print_summary(summary)
    assert summary_a["peer_root"] == summary_b["own_root"]
    print("\nBoth sides verified each other's commitment root.")


def run_tcp(role, port, peer_port):
    from repro.runtime.scenario import main as scenario_main
    if role is not None:
        # One side only: the peer runs in another terminal.
        return scenario_main(["--role", role, "--port", str(port),
                              "--peer-port", str(peer_port)])

    # No role given: be side A here and spawn side B as a real second
    # OS process, so the demo still exercises genuine TCP between
    # processes.
    import json
    import os
    import subprocess
    import sys
    from repro.runtime.scenario import run_tcp_side
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env = dict(os.environ, PYTHONPATH=src)
    print(f"Spawning peer process (side B) on port {peer_port}...\n")
    peer = subprocess.Popen(
        [sys.executable, "-m", "repro.runtime.scenario", "--role", "b",
         "--port", str(peer_port), "--peer-port", str(port), "--json"],
        stdout=subprocess.PIPE, env=env, text=True)
    try:
        summary_a = run_tcp_side("a", port, peer_port)
        out, _ = peer.communicate(timeout=120)
        summary_b = json.loads(out)
    finally:
        if peer.poll() is None:
            peer.kill()
    for summary in (summary_a, summary_b):
        print_summary(summary)
    assert summary_a["peer_root"] == summary_b["own_root"]
    print("\nBoth processes verified each other's commitment root.")
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--transport",
                        choices=("sim", "loopback", "tcp"),
                        default="sim")
    parser.add_argument("--role", choices=("a", "b"), default=None,
                        help="tcp only: run just this side")
    parser.add_argument("--port", type=int, default=None,
                        help="tcp only: this side's listen port "
                             "(default 9401 for side a, 9402 for b)")
    parser.add_argument("--peer-port", type=int, default=None,
                        help="tcp only: the other side's listen port")
    args = parser.parse_args(argv)

    if args.transport == "sim":
        run_sim()
    elif args.transport == "loopback":
        run_loopback()
    else:
        own, peer = (9402, 9401) if args.role == "b" else (9401, 9402)
        port = args.port if args.port is not None else own
        peer_port = args.peer_port if args.peer_port is not None \
            else peer
        return run_tcp(args.role, port, peer_port)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
