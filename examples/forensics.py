#!/usr/bin/env python3
"""Evidence forensics (§6.3): proving what was routed when.

With periodic commitments, a signed announcement alone does not prove a
route was live at commitment time — it may have been withdrawn.  This
example walks the paper's evidence-of-import timeline:

    t=10  Alice ANNOUNCEs route r to Bob, Bob ACKs
    t=20  Alice WITHDRAWs r, Bob ACKs
    t=30  commitment under dispute

Alice's (announce, ack) pair is valid evidence for any commitment after
t=10 — until Bob refutes it with Alice's own withdrawal for disputes
after t=20.  The tamper-evident log that stores all of this is also
demonstrated: a single flipped byte breaks the hash chain.

Run:  python examples/forensics.py
"""

from repro.bgp.prefix import Prefix
from repro.bgp.route import Route
from repro.crypto.keys import KeyRegistry, make_identity
from repro.crypto.signatures import Signer
from repro.spider.evidence import ImportEvidence, import_evidence_valid, \
    refute_import
from repro.spider.log import EntryKind, SpiderLog, TamperError
from repro.spider.wire import SpiderAck, SpiderAnnounce, SpiderWithdraw

PREFIX = Prefix.parse("203.0.113.0/24")
ALICE, BOB = 6, 5


def main():
    registry = KeyRegistry()
    alice = make_identity(ALICE, registry=registry, bits=512, seed=61)
    bob = make_identity(BOB, registry=registry, bits=512, seed=51)
    sign_alice, sign_bob = Signer(alice), Signer(bob)

    route = Route(prefix=PREFIX, as_path=(ALICE, 91), neighbor=ALICE)

    # --- The timeline. ---------------------------------------------------
    announce = SpiderAnnounce.make(sign_alice, receiver=BOB,
                                   timestamp=10.0, route=route,
                                   underlying=None)
    announce_ack = SpiderAck.make(sign_bob, sender=ALICE, timestamp=10.1,
                                  message_hash=announce.message_hash())
    withdraw = SpiderWithdraw.make(sign_alice, receiver=BOB,
                                   timestamp=20.0, prefix=PREFIX)
    withdraw_ack = SpiderAck.make(sign_bob, sender=ALICE, timestamp=20.1,
                                  message_hash=withdraw.message_hash())

    evidence = ImportEvidence(announce=announce, ack=announce_ack)

    print("Dispute: was Alice's route live at Bob at commitment time T?")
    for commit_time in (15.0, 30.0):
        prima_facie = import_evidence_valid(registry, evidence,
                                            commit_time)
        refuted = refute_import(registry, evidence, withdraw,
                                withdraw_ack, commit_time)
        verdict = "live" if prima_facie and not refuted else "not live"
        print(f"  T={commit_time:>4}: evidence valid={prima_facie}, "
              f"refuted by withdrawal={refuted}  ->  route was {verdict}")
    assert import_evidence_valid(registry, evidence, 15.0)
    assert not refute_import(registry, evidence, withdraw, withdraw_ack,
                             15.0)
    assert refute_import(registry, evidence, withdraw, withdraw_ack,
                         30.0)

    # --- The tamper-evident log behind it. -------------------------------
    print("\nBob's log of the exchange:")
    log = SpiderLog()
    log.append(10.1, EntryKind.RECV_ANNOUNCE, announce,
               announce.wire_size())
    log.append(10.1, EntryKind.SENT_ACK, announce_ack,
               announce_ack.wire_size())
    log.append(20.1, EntryKind.RECV_WITHDRAW, withdraw,
               withdraw.wire_size())
    log.append(20.1, EntryKind.SENT_ACK, withdraw_ack,
               withdraw_ack.wire_size())
    for entry in log:
        print(f"  [{entry.index}] t={entry.timestamp:<5} "
              f"{entry.kind.value:<14} {entry.size_bytes:>4} B "
              f"chain={entry.chain.hex()[:12]}…")
    log.verify_chain()
    print("hash chain verifies.")

    import dataclasses
    log._entries[1] = dataclasses.replace(log._entries[1], size_bytes=1)
    try:
        log.verify_chain()
    except TamperError as error:
        print(f"after tampering with entry 1: {error}")


if __name__ == "__main__":
    main()
